(* Tests for the physical substrate: links, CPU scheduler, host stacks,
   processes, and the underlay internet. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Graph = Vini_topo.Graph
module Plink = Vini_phys.Plink
module Cpu = Vini_phys.Cpu
module Slice = Vini_phys.Slice
module Ipstack = Vini_phys.Ipstack
module Pnode = Vini_phys.Pnode
module Process = Vini_phys.Process
module Underlay = Vini_phys.Underlay

let check = Alcotest.check
let rng seed = Vini_std.Rng.create seed
let a1 = Addr.of_string "10.0.0.1"
let a2 = Addr.of_string "10.0.0.2"

let udp ?(size = 1000) () =
  Packet.udp ~src:a1 ~dst:a2 ~sport:1 ~dport:2 (Packet.Bytes_ size)

(* --- plink --------------------------------------------------------------- *)

let test_plink_serialization_and_delay () =
  let engine = Engine.create () in
  (* 1 Mb/s, 10 ms propagation: a 1028-byte IP packet serialises in
     8.224 ms, so arrival at ~18.2 ms. *)
  let l =
    Plink.create ~engine ~rng:(rng 1) ~bandwidth_bps:1e6 ~delay:(Time.ms 10) ()
  in
  let arrival = ref Time.zero in
  Plink.transmit l ~dir:0 (udp ()) ~deliver:(fun _ -> arrival := Engine.now engine);
  Engine.run engine;
  let ms = Time.to_ms_f !arrival in
  check Alcotest.bool (Printf.sprintf "arrival %.3f ms" ms) true
    (ms > 18.0 && ms < 18.5)

let test_plink_fifo_backlog () =
  let engine = Engine.create () in
  let l =
    Plink.create ~engine ~rng:(rng 2) ~bandwidth_bps:1e6 ~delay:Time.zero ()
  in
  let arrivals = ref [] in
  for _ = 1 to 3 do
    Plink.transmit l ~dir:0 (udp ()) ~deliver:(fun _ ->
        arrivals := Time.to_ms_f (Engine.now engine) :: !arrivals)
  done;
  Engine.run engine;
  match List.rev !arrivals with
  | [ t1; t2; t3 ] ->
      check Alcotest.bool "spaced by serialisation" true
        (t2 -. t1 > 8.0 && t2 -. t1 < 8.5 && t3 -. t2 > 8.0 && t3 -. t2 < 8.5)
  | _ -> Alcotest.fail "expected 3 arrivals"

let test_plink_queue_drop () =
  let engine = Engine.create () in
  let l =
    Plink.create ~engine ~rng:(rng 3) ~bandwidth_bps:1e4 ~delay:Time.zero
      ~queue_bytes:3000 ()
  in
  let delivered = ref 0 in
  for _ = 1 to 10 do
    Plink.transmit l ~dir:0 (udp ()) ~deliver:(fun _ -> incr delivered)
  done;
  Engine.run engine;
  let s = Plink.stats l ~dir:0 in
  check Alcotest.bool "some queue drops" true (s.Plink.queue_drops > 0);
  check Alcotest.int "conservation" 10 (!delivered + s.Plink.queue_drops)

let test_plink_random_loss () =
  let engine = Engine.create () in
  let l =
    Plink.create ~engine ~rng:(rng 4) ~bandwidth_bps:1e9 ~delay:Time.zero
      ~loss:0.3 ()
  in
  let delivered = ref 0 in
  for _ = 1 to 2000 do
    Plink.transmit l ~dir:0 (udp ~size:100 ()) ~deliver:(fun _ -> incr delivered)
  done;
  Engine.run engine;
  let pct = float_of_int !delivered /. 2000.0 in
  check Alcotest.bool (Printf.sprintf "~70%% delivered (%.2f)" pct) true
    (pct > 0.65 && pct < 0.75)

let test_plink_down_drops_in_flight () =
  let engine = Engine.create () in
  let l =
    Plink.create ~engine ~rng:(rng 5) ~bandwidth_bps:1e9 ~delay:(Time.ms 50) ()
  in
  let delivered = ref 0 in
  Plink.transmit l ~dir:0 (udp ()) ~deliver:(fun _ -> incr delivered);
  (* Fail the link while the packet is propagating. *)
  ignore (Engine.at engine (Time.ms 10) (fun () -> Plink.set_up l false));
  Engine.run engine;
  check Alcotest.int "in-flight packet lost" 0 !delivered;
  Plink.set_up l true;
  Plink.transmit l ~dir:0 (udp ()) ~deliver:(fun _ -> incr delivered);
  Engine.run engine;
  check Alcotest.int "works after restore" 1 !delivered

let test_plink_directions_independent () =
  let engine = Engine.create () in
  let l =
    Plink.create ~engine ~rng:(rng 6) ~bandwidth_bps:1e6 ~delay:Time.zero ()
  in
  Plink.transmit l ~dir:0 (udp ()) ~deliver:(fun _ -> ());
  Plink.transmit l ~dir:1 (udp ()) ~deliver:(fun _ -> ());
  check Alcotest.int "dir 0 counted" 1 (Plink.stats l ~dir:0).Plink.sent;
  check Alcotest.int "dir 1 counted" 1 (Plink.stats l ~dir:1).Plink.sent

(* --- cpu ------------------------------------------------------------------ *)

let spawn_counter cpu ~slice ~work_items ~cost =
  let remaining = ref work_items in
  let done_count = ref 0 in
  let proc =
    Cpu.spawn cpu ~slice ~name:"p"
      ~has_work:(fun () -> !remaining > 0)
      ~next_cost:(fun () -> cost)
      ~exec:(fun () ->
        decr remaining;
        incr done_count)
  in
  (proc, done_count)

let test_cpu_dedicated_executes_all () =
  let engine = Engine.create () in
  let cpu =
    Cpu.create ~engine ~rng:(rng 7) ~speed_ghz:2.8 ~contention:Cpu.Dedicated
  in
  let proc, done_count =
    spawn_counter cpu ~slice:(Slice.default_share "s") ~work_items:1000
      ~cost:(Time.us 10)
  in
  Cpu.kick proc;
  Engine.run engine;
  check Alcotest.int "all processed" 1000 !done_count;
  (* 1000 * 10us = 10 ms of CPU. *)
  check Alcotest.bool "cpu time accounted" true
    (Time.compare (Cpu.cpu_time proc) (Time.ms 10) = 0);
  (* Dedicated: wall clock close to CPU time. *)
  check Alcotest.bool "little dilation" true
    (Time.to_ms_f (Engine.now engine) < 11.0)

let test_cpu_scale_cost () =
  let engine = Engine.create () in
  let half =
    Cpu.create ~engine ~rng:(rng 8) ~speed_ghz:1.4 ~contention:Cpu.Dedicated
  in
  check Alcotest.bool "1.4 GHz doubles reference cost" true
    (Time.compare (Cpu.scale_cost half (Time.us 10)) (Time.us 20) = 0)

let test_cpu_contention_dilates () =
  let engine = Engine.create () in
  (* Pathological contention: always 9 runnable competitors -> 10% share. *)
  let cpu =
    Cpu.create ~engine ~rng:(rng 9) ~speed_ghz:2.8
      ~contention:(Cpu.Shared { active_sampler = (fun _ -> 9) })
  in
  let proc, done_count =
    spawn_counter cpu ~slice:(Slice.default_share "s") ~work_items:100
      ~cost:(Time.us 100)
  in
  Cpu.kick proc;
  Engine.run engine;
  check Alcotest.int "all processed eventually" 100 !done_count;
  (* 10 ms of CPU at 10% share -> ~100 ms of wall clock. *)
  check Alcotest.bool
    (Printf.sprintf "x10 dilation (%.1f ms)" (Time.to_ms_f (Engine.now engine)))
    true
    (Time.to_ms_f (Engine.now engine) > 90.0)

let test_cpu_reservation_floors_share () =
  let engine = Engine.create () in
  let cpu =
    Cpu.create ~engine ~rng:(rng 10) ~speed_ghz:2.8
      ~contention:(Cpu.Shared { active_sampler = (fun _ -> 9) })
  in
  let slice = Slice.create ~reservation:0.5 "r" in
  let proc, done_count =
    spawn_counter cpu ~slice ~work_items:100 ~cost:(Time.us 100)
  in
  Cpu.kick proc;
  Engine.run engine;
  check Alcotest.int "all processed" 100 !done_count;
  (* 10 ms of CPU at a 50% reservation -> ~20 ms wall. *)
  check Alcotest.bool
    (Printf.sprintf "floored dilation (%.1f ms)" (Time.to_ms_f (Engine.now engine)))
    true
    (Time.to_ms_f (Engine.now engine) < 25.0)

let test_cpu_realtime_wakes_fast () =
  let engine = Engine.create () in
  let shared () =
    Cpu.create ~engine ~rng:(rng 11) ~speed_ghz:2.8
      ~contention:
        (Cpu.Shared { active_sampler = Vini_phys.Calibration.shared_active_slices () })
  in
  let wake_time slice =
    let cpu = shared () in
    let first = ref Time.zero in
    let fired = ref false in
    let proc =
      Cpu.spawn cpu ~slice ~name:"w"
        ~has_work:(fun () -> not !fired)
        ~next_cost:(fun () -> Time.us 1)
        ~exec:(fun () ->
          fired := true;
          first := Engine.now engine)
    in
    let t0 = Engine.now engine in
    Cpu.kick proc;
    Engine.run engine;
    Time.to_sec_f (Time.sub !first t0)
  in
  (* Sample repeatedly: the rt latency bound must hold every time. *)
  let rt_max = ref 0.0 in
  for _ = 1 to 50 do
    rt_max := Float.max !rt_max (wake_time (Slice.pl_vini "rt"))
  done;
  check Alcotest.bool
    (Printf.sprintf "rt wake < 1 ms (max %.4f s)" !rt_max)
    true (!rt_max < 0.001)

let test_cpu_kick_idempotent_while_busy () =
  let engine = Engine.create () in
  let cpu =
    Cpu.create ~engine ~rng:(rng 12) ~speed_ghz:2.8 ~contention:Cpu.Dedicated
  in
  let proc, done_count =
    spawn_counter cpu ~slice:(Slice.default_share "s") ~work_items:5
      ~cost:(Time.us 10)
  in
  Cpu.kick proc;
  Cpu.kick proc;
  Cpu.kick proc;
  Engine.run engine;
  check Alcotest.int "processed once each" 5 !done_count;
  check Alcotest.int "single wakeup" 1 (Cpu.wakeups proc)

(* --- ipstack ---------------------------------------------------------------- *)

let test_ipstack_udp_demux () =
  let engine = Engine.create () in
  let sent = ref [] in
  let s = Ipstack.create ~engine ~local_addr:a1 ~tx:(fun p -> sent := p :: !sent) () in
  let got = ref 0 in
  Ipstack.bind_udp s ~port:7000 (fun _ -> incr got);
  Ipstack.deliver s (Packet.udp ~src:a2 ~dst:a1 ~sport:1 ~dport:7000 (Packet.Bytes_ 1));
  Ipstack.deliver s (Packet.udp ~src:a2 ~dst:a1 ~sport:1 ~dport:7001 (Packet.Bytes_ 1));
  check Alcotest.int "only bound port" 1 !got;
  check Alcotest.int "unmatched counted" 1 (Ipstack.unmatched s)

let test_ipstack_port_conflict () =
  let engine = Engine.create () in
  let s = Ipstack.create ~engine ~local_addr:a1 ~tx:(fun _ -> ()) () in
  Ipstack.bind_udp s ~port:7000 (fun _ -> ());
  Alcotest.check_raises "port in use"
    (Invalid_argument "Ipstack.bind_udp: port 7000 in use") (fun () ->
      Ipstack.bind_udp s ~port:7000 (fun _ -> ()));
  Ipstack.unbind_udp s ~port:7000;
  Ipstack.bind_udp s ~port:7000 (fun _ -> ())

let test_ipstack_echo_like_kernel () =
  let engine = Engine.create () in
  let sent = ref [] in
  let s = Ipstack.create ~engine ~local_addr:a1 ~tx:(fun p -> sent := p :: !sent) () in
  Ipstack.deliver s
    (Packet.icmp ~src:a2 ~dst:a1
       (Packet.Echo_request { ident = 1; icmp_seq = 9; sent_ns = 5; data_len = 56 }));
  match !sent with
  | [ reply ] -> (
      check Alcotest.bool "to sender" true (Addr.equal reply.Packet.dst a2);
      match reply.Packet.proto with
      | Packet.Icmp (Packet.Echo_reply e) ->
          check Alcotest.int "same seq" 9 e.Packet.icmp_seq
      | _ -> Alcotest.fail "not an echo reply")
  | _ -> Alcotest.fail "expected exactly one reply"

let test_ipstack_ephemeral_ports_unique () =
  let engine = Engine.create () in
  let s = Ipstack.create ~engine ~local_addr:a1 ~tx:(fun _ -> ()) () in
  let p1 = Ipstack.alloc_ephemeral s and p2 = Ipstack.alloc_ephemeral s in
  check Alcotest.bool "distinct" true (p1 <> p2);
  check Alcotest.bool "high range" true (p1 >= 49152)

(* --- underlay ------------------------------------------------------------ *)

let chain ?(mask_failures = true) ~engine () =
  let link a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 1; loss = 0.0; weight = 1 }
  in
  let g =
    Graph.create ~names:[| "n0"; "n1"; "n2"; "n3" |]
      ~links:[ link 0 1; link 1 2; link 2 3; link 0 3 ]
  in
  Underlay.create ~engine ~rng:(rng 20) ~graph:g ~mask_failures ()

let test_underlay_end_to_end () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n0 = Underlay.node u 0 and n2 = Underlay.node u 2 in
  let got = ref 0 in
  Ipstack.bind_udp (Pnode.stack n2) ~port:5000 (fun _ -> incr got);
  Pnode.send n0
    (Packet.udp ~src:(Pnode.addr n0) ~dst:(Pnode.addr n2) ~sport:1 ~dport:5000
       (Packet.Bytes_ 100));
  Engine.run engine;
  check Alcotest.int "delivered across two hops" 1 !got

let test_underlay_next_hop_and_reroute () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  (* 0->2 prefers 0-1-2 (cost 2) over 0-3-2 (cost 2)?  Both are 2; the tie
     breaks deterministically to the lower prev.  Fail 0-1 and the only
     path is via 3. *)
  Underlay.set_link_state u 0 1 false;
  check Alcotest.(option int) "rerouted via 3" (Some 3)
    (Underlay.next_hop u ~from:0 ~dst:2)

let test_underlay_exposed_failure_blackholes () =
  let engine = Engine.create () in
  let u = chain ~mask_failures:false ~engine () in
  let n0 = Underlay.node u 0 in
  let before = Underlay.blackholed u in
  let original = Underlay.next_hop u ~from:0 ~dst:2 in
  (* Fail whichever link the route uses; without masking the route stays. *)
  (match original with
  | Some nh -> Underlay.set_link_state u 0 nh false
  | None -> Alcotest.fail "expected a route");
  Pnode.send n0
    (Packet.udp ~src:(Pnode.addr n0) ~dst:(Underlay.addr u 2) ~sport:1
       ~dport:5000 (Packet.Bytes_ 100));
  Engine.run engine;
  check Alcotest.bool "blackholed" true (Underlay.blackholed u > before)

let test_underlay_upcalls () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let events = ref [] in
  Underlay.subscribe u (fun e -> events := e :: !events);
  Underlay.set_link_state u 0 1 false;
  Underlay.set_link_state u 0 1 false;
  (* no-op: already down *)
  Underlay.set_link_state u 0 1 true;
  check Alcotest.int "two transitions" 2 (List.length !events);
  match List.rev !events with
  | [ Underlay.Link_down (0, 1); Underlay.Link_up (0, 1) ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

let test_underlay_ttl_expiry () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n0 = Underlay.node u 0 in
  let exceeded = ref 0 in
  Ipstack.set_icmp_handler (Pnode.stack n0) (fun pkt ->
      match pkt.Packet.proto with
      | Packet.Icmp (Packet.Time_exceeded _) -> incr exceeded
      | _ -> ());
  Pnode.send n0
    (Packet.udp ~ttl:1 ~src:(Pnode.addr n0) ~dst:(Underlay.addr u 2) ~sport:1
       ~dport:5000 (Packet.Bytes_ 10));
  Engine.run engine;
  check Alcotest.int "time exceeded returned" 1 !exceeded

let test_underlay_loopback () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n0 = Underlay.node u 0 in
  let got = ref 0 in
  Ipstack.bind_udp (Pnode.stack n0) ~port:5000 (fun _ -> incr got);
  Pnode.send n0
    (Packet.udp ~src:(Pnode.addr n0) ~dst:(Pnode.addr n0) ~sport:1 ~dport:5000
       (Packet.Bytes_ 10));
  Engine.run engine;
  check Alcotest.int "self delivery" 1 !got

(* --- htb ------------------------------------------------------------------ *)

module Htb = Vini_phys.Htb

let test_htb_respects_root_rate () =
  let engine = Engine.create () in
  let out_bytes = ref 0 in
  let htb =
    Htb.create ~engine ~rate_bps:1e6
      ~out:(fun p -> out_bytes := !out_bytes + Packet.size p)
      ()
  in
  let c = Htb.add_class htb ~name:"a" ~queue_bytes:1_000_000 () in
  for _ = 1 to 200 do
    ignore (Htb.enqueue htb c (udp ()))
  done;
  Engine.run ~until:(Time.sec 1) engine;
  (* 1 Mb/s = 125 KB/s; allow the burst allowance. *)
  check Alcotest.bool
    (Printf.sprintf "root rate enforced (%d B in 1 s)" !out_bytes)
    true
    (!out_bytes > 100_000 && !out_bytes < 150_000)

let test_htb_assured_guarantee () =
  (* Two classes share a 1 Mb/s root; 'guaranteed' has 600 kb/s assured and
     offers exactly that; 'bulk' floods.  Guaranteed must get its rate. *)
  let engine = Engine.create () in
  let htb = Htb.create ~engine ~rate_bps:1e6 ~out:(fun _ -> ()) () in
  let g = Htb.add_class htb ~name:"guaranteed" ~assured_bps:6e5 ~queue_bytes:1_000_000 () in
  let b = Htb.add_class htb ~name:"bulk" ~queue_bytes:4_000_000 () in
  (* Offer: guaranteed 600 kb/s paced, bulk as fast as possible. *)
  let rec offer_g i =
    if i < 150 then begin
      ignore (Htb.enqueue htb g (udp ()));
      (* 1028 B at 600 kb/s -> every ~13.7 ms *)
      ignore (Engine.after engine (Time.us 13_700) (fun () -> offer_g (i + 1)))
    end
  in
  offer_g 0;
  for _ = 1 to 2000 do
    ignore (Htb.enqueue htb b (udp ()))
  done;
  Engine.run ~until:(Time.sec 2) engine;
  let g_bps = float_of_int (Htb.class_sent_bytes g * 8) /. 2.0 in
  let b_bps = float_of_int (Htb.class_sent_bytes b * 8) /. 2.0 in
  check Alcotest.bool
    (Printf.sprintf "guarantee met (%.0f bps)" g_bps)
    true
    (g_bps > 5.2e5 && g_bps < 6.8e5);
  check Alcotest.bool
    (Printf.sprintf "bulk got the rest (%.0f bps)" b_bps)
    true
    (b_bps > 2.5e5 && b_bps < 4.8e5)

let test_htb_ceiling () =
  let engine = Engine.create () in
  let htb = Htb.create ~engine ~rate_bps:10e6 ~out:(fun _ -> ()) () in
  let capped = Htb.add_class htb ~name:"capped" ~ceil_bps:1e6 ~queue_bytes:8_000_000 () in
  for _ = 1 to 5000 do
    ignore (Htb.enqueue htb capped (udp ()))
  done;
  Engine.run ~until:(Time.sec 2) engine;
  let bps = float_of_int (Htb.class_sent_bytes capped * 8) /. 2.0 in
  check Alcotest.bool
    (Printf.sprintf "ceiling enforced (%.0f bps)" bps)
    true
    (bps > 0.8e6 && bps < 1.25e6)

let test_htb_borrows_idle_capacity () =
  (* Alone on the link, a 0-assured class may borrow up to the root rate. *)
  let engine = Engine.create () in
  let htb = Htb.create ~engine ~rate_bps:1e6 ~out:(fun _ -> ()) () in
  let c = Htb.add_class htb ~name:"only" ~queue_bytes:1_000_000 () in
  for _ = 1 to 200 do
    ignore (Htb.enqueue htb c (udp ()))
  done;
  Engine.run ~until:(Time.sec 1) engine;
  let bps = float_of_int (Htb.class_sent_bytes c * 8) in
  check Alcotest.bool (Printf.sprintf "borrows to root (%.0f bps)" bps) true
    (bps > 0.8e6)

let test_htb_class_validation () =
  let engine = Engine.create () in
  let htb = Htb.create ~engine ~rate_bps:1e6 ~out:(fun _ -> ()) () in
  ignore (Htb.add_class htb ~name:"x" ());
  Alcotest.check_raises "duplicate" (Invalid_argument "Htb.add_class: duplicate class")
    (fun () -> ignore (Htb.add_class htb ~name:"x" ()));
  Alcotest.check_raises "assured>ceil"
    (Invalid_argument "Htb.add_class: assured above ceiling") (fun () ->
      ignore (Htb.add_class htb ~name:"y" ~assured_bps:2e6 ~ceil_bps:1e6 ()))

let test_htb_on_pnode () =
  (* Two slices' traffic through one node's HTB: the guaranteed slice keeps
     its rate despite the flood. *)
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n0 = Underlay.node u 0 and n1 = Underlay.node u 1 in
  Pnode.enable_egress_htb n0 ~rate_bps:10e6;
  Pnode.set_egress_class n0 ~name:"careful" ~assured_bps:4e6 ();
  Pnode.set_egress_class n0 ~name:"noisy" ();
  let got_careful = ref 0 in
  Ipstack.bind_udp (Pnode.stack n1) ~port:5001 (fun p ->
      got_careful := !got_careful + Packet.size p);
  Ipstack.bind_udp (Pnode.stack n1) ~port:5002 (fun _ -> ());
  (* careful offers 4 Mb/s paced; noisy floods 60 Mb/s. *)
  let mk port = 
    Packet.udp ~src:(Pnode.addr n0) ~dst:(Pnode.addr n1) ~sport:1 ~dport:port
      (Packet.Bytes_ 1000)
  in
  let rec careful i =
    if i < 2000 then begin
      Pnode.send_as n0 ~cls:"careful" (mk 5001);
      ignore (Engine.after engine (Time.us 2056) (fun () -> careful (i + 1)))
    end
  in
  careful 0;
  let rec noisy i =
    if i < 20_000 then begin
      Pnode.send_as n0 ~cls:"noisy" (mk 5002);
      ignore (Engine.after engine (Time.us 137) (fun () -> noisy (i + 1)))
    end
  in
  noisy 0;
  Engine.run ~until:(Time.sec 2) engine;
  let careful_bps = float_of_int (!got_careful * 8) /. 2.0 in
  check Alcotest.bool
    (Printf.sprintf "careful slice protected (%.1f Mb/s)" (careful_bps /. 1e6))
    true
    (careful_bps > 3.3e6);
  match Pnode.egress_class_stats n0 ~name:"noisy" with
  | Some (_, drops) ->
      check Alcotest.bool "noisy slice dropped at the htb" true (drops > 0)
  | None -> Alcotest.fail "stats expected"

(* --- process ----------------------------------------------------------------- *)

let test_process_drains_socket () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n0 = Underlay.node u 0 and n1 = Underlay.node u 1 in
  let handled = ref 0 in
  let proc =
    Process.create ~node:n1 ~slice:(Slice.pl_vini "s") ~name:"p"
      ~handler:(fun _ -> incr handled)
      ()
  in
  ignore (Process.open_socket proc ~port:33000 ());
  for _ = 1 to 20 do
    Pnode.send n0
      (Packet.udp ~src:(Pnode.addr n0) ~dst:(Pnode.addr n1) ~sport:1
         ~dport:33000 (Packet.Bytes_ 500))
  done;
  Engine.run engine;
  check Alcotest.int "all drained" 20 !handled;
  check Alcotest.int "processed counter" 20 (Process.packets_processed proc);
  check Alcotest.bool "cpu billed" true
    (Time.compare (Process.cpu_time proc) Time.zero > 0)

let test_process_rcvbuf_overflow () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n0 = Underlay.node u 0 and n1 = Underlay.node u 1 in
  let proc =
    Process.create ~node:n1 ~slice:(Slice.default_share "s") ~name:"p"
      ~handler:(fun _ -> ())
      ()
  in
  (* A tiny receive buffer and a burst far larger than it: when packets
     land while the process waits to be scheduled, the tail drops. *)
  ignore (Process.open_socket proc ~port:33000 ~rcvbuf_bytes:3000 ());
  for _ = 1 to 50 do
    Pnode.send n0
      (Packet.udp ~src:(Pnode.addr n0) ~dst:(Pnode.addr n1) ~sport:1
         ~dport:33000 (Packet.Bytes_ 1400))
  done;
  Engine.run engine;
  check Alcotest.bool
    (Printf.sprintf "socket overflow drops (%d)" (Process.socket_drops proc))
    true
    (Process.socket_drops proc > 0)

let test_process_injection_queue () =
  let engine = Engine.create () in
  let u = chain ~engine () in
  let n1 = Underlay.node u 1 in
  let handled = ref 0 in
  let proc =
    Process.create ~node:n1 ~slice:(Slice.pl_vini "s") ~name:"p"
      ~handler:(fun _ -> incr handled)
      ()
  in
  let inject = Process.open_queue proc () in
  for _ = 1 to 10 do
    ignore (inject (udp ()))
  done;
  Engine.run engine;
  check Alcotest.int "injected packets handled" 10 !handled

let suite =
  [
    Alcotest.test_case "plink serialization+delay" `Quick test_plink_serialization_and_delay;
    Alcotest.test_case "plink fifo backlog" `Quick test_plink_fifo_backlog;
    Alcotest.test_case "plink queue drop" `Quick test_plink_queue_drop;
    Alcotest.test_case "plink random loss" `Quick test_plink_random_loss;
    Alcotest.test_case "plink down drops in-flight" `Quick test_plink_down_drops_in_flight;
    Alcotest.test_case "plink directions independent" `Quick test_plink_directions_independent;
    Alcotest.test_case "cpu dedicated executes all" `Quick test_cpu_dedicated_executes_all;
    Alcotest.test_case "cpu cost scaling" `Quick test_cpu_scale_cost;
    Alcotest.test_case "cpu contention dilates" `Quick test_cpu_contention_dilates;
    Alcotest.test_case "cpu reservation floors share" `Quick test_cpu_reservation_floors_share;
    Alcotest.test_case "cpu realtime wakes fast" `Quick test_cpu_realtime_wakes_fast;
    Alcotest.test_case "cpu kick idempotent" `Quick test_cpu_kick_idempotent_while_busy;
    Alcotest.test_case "ipstack udp demux" `Quick test_ipstack_udp_demux;
    Alcotest.test_case "ipstack port conflict" `Quick test_ipstack_port_conflict;
    Alcotest.test_case "ipstack kernel echo" `Quick test_ipstack_echo_like_kernel;
    Alcotest.test_case "ipstack ephemeral ports" `Quick test_ipstack_ephemeral_ports_unique;
    Alcotest.test_case "underlay end to end" `Quick test_underlay_end_to_end;
    Alcotest.test_case "underlay reroute (masking)" `Quick test_underlay_next_hop_and_reroute;
    Alcotest.test_case "underlay exposure blackholes" `Quick test_underlay_exposed_failure_blackholes;
    Alcotest.test_case "underlay upcalls" `Quick test_underlay_upcalls;
    Alcotest.test_case "underlay ttl expiry" `Quick test_underlay_ttl_expiry;
    Alcotest.test_case "underlay loopback" `Quick test_underlay_loopback;
    Alcotest.test_case "htb root rate" `Quick test_htb_respects_root_rate;
    Alcotest.test_case "htb assured guarantee" `Quick test_htb_assured_guarantee;
    Alcotest.test_case "htb ceiling" `Quick test_htb_ceiling;
    Alcotest.test_case "htb borrows idle capacity" `Quick test_htb_borrows_idle_capacity;
    Alcotest.test_case "htb class validation" `Quick test_htb_class_validation;
    Alcotest.test_case "htb protects a slice on a node" `Quick test_htb_on_pnode;
    Alcotest.test_case "process drains socket" `Quick test_process_drains_socket;
    Alcotest.test_case "process rcvbuf overflow" `Quick test_process_rcvbuf_overflow;
    Alcotest.test_case "process injection queue" `Quick test_process_injection_queue;
  ]
