(* Tests for the runtime self-profiler ([Vini_sim.Profile]), the
   sim-clock timeline sampler ([Vini_measure.Timeline]) and the
   data-plane watermarks they export. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Profile = Vini_sim.Profile
module Timeline = Vini_measure.Timeline
module Export = Vini_measure.Export
module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Pool = Vini_net.Pool
module Ring = Vini_click.Ring
module Batch = Vini_click.Batch
module Element = Vini_click.Element

let check = Alcotest.check

let udp ?(size = 500) () =
  Packet.udp
    ~src:(Addr.of_string "10.0.0.1")
    ~dst:(Addr.of_string "10.0.0.2")
    ~sport:1 ~dport:2 (Packet.Bytes_ size)

(* --- element attribution ------------------------------------------------- *)

(* A two-element chain under an installed profile: leaf paths carry the
   service cost, packet counts land per class, and totals roll up to
   ancestors.  After uninstall the gate is down and nothing more is
   recorded. *)
let test_element_attribution () =
  let p = Profile.create () in
  let sink = Element.make "prof.sink" (fun _ -> ()) in
  let route = Element.make "prof.route" (fun pkt -> Element.push sink pkt) in
  Profile.install p;
  Profile.set_service_cost 0.001;
  for _ = 1 to 10 do
    Element.push route (udp ())
  done;
  Profile.clear_service_cost ();
  Profile.uninstall ();
  check Alcotest.bool "gate down after uninstall" false !Profile.gate;
  Element.push route (udp ());
  (* 10 packets offered to each of the two classes. *)
  check Alcotest.int "packets counted once per class" 20
    (Profile.element_packets_total p);
  check (Alcotest.float 1e-9) "all cost attributed" 0.01
    (Profile.attributed_cost_s p);
  let rows = Profile.element_rows p in
  let row name =
    List.find (fun r -> r.Profile.er_class = name) rows
  in
  let rt = row "prof.route" and sk = row "prof.sink" in
  (* The sink is the leaf: all self time there; the route's total
     includes the path it sits on, but its self time is zero. *)
  check (Alcotest.float 1e-9) "sink self" 0.01 sk.Profile.er_self_s;
  check (Alcotest.float 1e-9) "route self" 0.0 rt.Profile.er_self_s;
  check (Alcotest.float 1e-9) "route total" 0.01 rt.Profile.er_total_s;
  match Profile.collapsed p with
  | [ (path, cost_s, count) ] ->
      check Alcotest.string "collapsed path" "prof.route;prof.sink" path;
      check (Alcotest.float 1e-9) "collapsed cost" 0.01 cost_s;
      check Alcotest.int "collapsed count" 10 count
  | other ->
      Alcotest.failf "expected one collapsed path, got %d"
        (List.length other)

(* --- engine/shard telemetry ---------------------------------------------- *)

(* On the serial sharded engine, an installed profile sees windows,
   per-shard events and explicit cross-shard posts; installing it never
   perturbs the schedule (same final clock with and without). *)
let test_sharded_engine_telemetry () =
  let run ~profiled =
    let engine = Engine.create ~seed:11 ~shards:4 () in
    let p = Profile.create () in
    if profiled then Profile.install p;
    let fired = ref 0 in
    for sh = 0 to 3 do
      ignore
        (Engine.at_shard engine ~shard:sh (Time.ms (10 * (sh + 1)))
           (fun () ->
             incr fired;
             (* A cross-shard handoff from each shard to its neighbour. *)
             ignore
               (Engine.at_shard engine
                  ~shard:((sh + 1) mod 4)
                  (Time.ms 200) (fun () -> incr fired))))
    done;
    Engine.run ~until:(Time.sec 1) engine;
    Profile.uninstall ();
    (!fired, Engine.now engine, p)
  in
  let fired_off, clock_off, _ = run ~profiled:false in
  let fired_on, clock_on, p = run ~profiled:true in
  check Alcotest.int "same events fired" fired_off fired_on;
  check Alcotest.bool "same final clock" true
    (Time.compare clock_off clock_on = 0);
  check Alcotest.bool "windows recorded" true (Profile.windows p > 0);
  check Alcotest.int "window hist matches count" (Profile.windows p)
    (Vini_std.Histogram.count (Profile.events_per_window p));
  check Alcotest.int "shard events sum to fired" 8
    (Array.fold_left ( + ) 0 (Profile.shard_events p));
  check Alcotest.bool "cross-shard posts seen" true
    (Profile.cross_posts_total p >= 4)

(* --- watermark monotonicity ---------------------------------------------- *)

(* The pool's low watermark only ever falls; the ring's depth watermark
   only ever rises.  Checked stepwise under a deterministic ragged
   workload. *)
let test_watermark_monotonicity () =
  let pool = Pool.create ~capacity:32 ~mint:(fun _ -> udp ()) () in
  let ring = Ring.create ~capacity:16 in
  let rng = Vini_std.Rng.create 42 in
  let low = ref (Pool.low_watermark pool) in
  let deep = ref (Ring.depth_hwm ring) in
  check Alcotest.int "low watermark starts at capacity" 32 !low;
  check Alcotest.int "depth watermark starts at zero" 0 !deep;
  for _ = 1 to 500 do
    let takes = Vini_std.Rng.int rng 6 in
    for _ = 1 to takes do
      match Pool.take_opt pool with
      | Some p -> if not (Ring.push ring p) then Pool.recycle pool p
      | None -> ()
    done;
    let pops = Vini_std.Rng.int rng 6 in
    for _ = 1 to pops do
      match Ring.pop ring with
      | Some p -> Pool.recycle pool p
      | None -> ()
    done;
    let low' = Pool.low_watermark pool in
    let deep' = Ring.depth_hwm ring in
    check Alcotest.bool "low watermark non-increasing" true (low' <= !low);
    check Alcotest.bool "depth watermark non-decreasing" true
      (deep' >= !deep);
    check Alcotest.bool "low watermark within range" true
      (low' >= 0 && low' <= Pool.capacity pool);
    check Alcotest.bool "depth watermark within range" true
      (deep' >= Ring.length ring && deep' <= Ring.capacity ring);
    low := low';
    deep := deep'
  done;
  check Alcotest.bool "workload actually moved the watermarks" true
    (!low < 32 && !deep > 0)

(* --- timeline: schema round-trip with hostile series names --------------- *)

let test_timeline_roundtrip_escaping () =
  let engine = Engine.create ~seed:3 () in
  let tl = Timeline.create ~engine ~interval:(Time.ms 100) () in
  let v = ref 0.0 in
  let names =
    [
      "plain.series";
      "with \"quotes\"";
      "new\nline";
      "tab\there";
      "back\\slash";
      "ctrl\x01char";
    ]
  in
  List.iter
    (fun name -> Timeline.register tl ~name (fun () -> !v))
    names;
  (* Duplicate registration is rejected. *)
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Timeline.register: duplicate series plain.series")
    (fun () -> Timeline.register tl ~name:"plain.series" (fun () -> 0.0));
  ignore
    (Engine.at engine (Time.ms 150) (fun () -> v := 1.5));
  Engine.run ~until:(Time.ms 450) engine;
  check Alcotest.int "four snapshots" 4 (Timeline.nsamples tl);
  (* Frozen after the first snapshot. *)
  Alcotest.check_raises "frozen"
    (Invalid_argument "Timeline.register: sampling already started")
    (fun () -> Timeline.register tl ~name:"late" (fun () -> 0.0));
  let doc = Timeline.document tl in
  let text = Export.to_string doc in
  (match Export.of_string text with
  | Ok parsed ->
      check Alcotest.bool "round-trips structurally" true (parsed = doc);
      (match Option.bind (Export.member "series" parsed) Export.to_list with
      | Some series ->
          check
            (Alcotest.list Alcotest.string)
            "series names survive escaping" names
            (List.filter_map Export.to_str series)
      | None -> Alcotest.fail "series member missing");
      (match Option.bind (Export.member "samples" parsed) Export.to_list with
      | Some rows ->
          check Alcotest.int "rows" 4 (List.length rows);
          List.iter
            (fun row ->
              match Export.to_list row with
              | Some cells ->
                  check Alcotest.int "row width" 7 (List.length cells)
              | None -> Alcotest.fail "row is not an array")
            rows
      | None -> Alcotest.fail "samples member missing")
  | Error e -> Alcotest.failf "parse error: %s" e);
  (* Values sampled on the sim clock: the mutation at 150 ms lands in
     snapshot 2 (t = 200 ms) and later, not in snapshot 1. *)
  match Timeline.samples tl with
  | (t1, r1) :: (_, r2) :: _ ->
      check (Alcotest.float 1e-9) "first snapshot at 100 ms" 0.1 t1;
      check (Alcotest.float 1e-9) "before mutation" 0.0 r1.(0);
      check (Alcotest.float 1e-9) "after mutation" 1.5 r2.(0)
  | _ -> Alcotest.fail "expected snapshots"

(* --- timeline: byte identity across domain counts ------------------------ *)

let test_timeline_domain_byte_identity () =
  let doc1, mbps1 =
    Vini_repro.Deter.timeline_run ~duration_s:1 ~interval_ms:250 ~domains:1 ()
  in
  let doc2, mbps2 =
    Vini_repro.Deter.timeline_run ~duration_s:1 ~interval_ms:250 ~domains:2 ()
  in
  check (Alcotest.float 1e-9) "same throughput" mbps1 mbps2;
  check Alcotest.string "byte-identical document"
    (Export.to_string doc1) (Export.to_string doc2)

(* --- timeline: allocation only at snapshot boundaries -------------------- *)

(* Steady-state batched forwarding with a timeline attached (but between
   ticks) allocates nothing; taking a snapshot is the only allocation
   point. *)
let test_timeline_gc_snapshot_boundary () =
  let engine = Engine.create ~seed:9 () in
  let tl = Timeline.create ~engine ~interval:(Time.sec 1) () in
  let pool = Pool.create ~capacity:64 ~mint:(fun _ -> udp ()) () in
  let ring = Ring.create ~capacity:64 in
  let sink =
    Element.make_batch "gc.sink"
      ~single:(fun pkt -> Pool.recycle pool pkt)
      ~batch:(fun b ->
        for i = 0 to Batch.length b - 1 do
          Pool.recycle pool (Batch.unsafe_get b i)
        done)
  in
  Timeline.watch_pool tl ~prefix:"pool" pool;
  Timeline.watch_ring tl ~prefix:"ring" ring;
  let batch = Batch.create ~capacity:32 in
  let breath () =
    for _ = 1 to 32 do
      if Pool.available pool > 0 then ignore (Ring.push ring (Pool.take pool))
    done;
    Batch.clear batch;
    let n = Ring.pop_into ring batch ~max:32 in
    if n > 0 then Element.push_batch sink batch
  in
  (* Warmup settles the pool/ring population and freezes the source set
     with one snapshot. *)
  for _ = 1 to 10 do breath () done;
  Timeline.sample_now tl;
  (* [quick_stat] for the zero check (same idiom as the click zero-alloc
     test); the exact [Gc.minor_words] counter for the positive check,
     since on OCaml 5.1 [quick_stat] only refreshes at minor
     collections and a snapshot's row is far smaller than one. *)
  let w0 = (Gc.quick_stat ()).Gc.minor_words in
  for _ = 1 to 1_000 do breath () done;
  let w1 = (Gc.quick_stat ()).Gc.minor_words in
  check Alcotest.int "zero minor words between snapshots" 0
    (int_of_float (w1 -. w0));
  let m0 = Gc.minor_words () in
  Timeline.sample_now tl;
  let m1 = Gc.minor_words () in
  check Alcotest.bool "snapshot is the allocation point" true
    (m1 -. m0 > 2.0);
  check Alcotest.int "both snapshots retained" 2 (Timeline.nsamples tl)

(* --- per-hop span tiling under bursting ---------------------------------- *)

module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Pnode = Vini_phys.Pnode
module Process = Vini_phys.Process
module Slice = Vini_phys.Slice
module Sspan = Vini_sim.Span
module Mspan = Vini_measure.Span
module Trace = Vini_sim.Trace

(* With [burst > 1] and spans on, each packet's Cpu_service span covers
   its own cost-proportional slice of the breath: positive width,
   pairwise non-overlapping, and tiling the service window end to end. *)
let test_burst_span_per_hop_tiling () =
  let engine = Engine.create ~seed:21 () in
  let g =
    Graph.create ~names:[| "n0" |] ~links:[]
  in
  let u = Underlay.create ~engine ~rng:(Vini_std.Rng.create 5) ~graph:g () in
  let n0 = Underlay.node u 0 in
  let trace =
    Trace.create ~capacity:64 ~categories:[ Trace.Category.Span ] ()
  in
  Trace.install trace;
  let recorder = Sspan.create ~capacity:4096 () in
  Sspan.install recorder;
  let proc =
    Process.create ~node:n0 ~slice:(Slice.pl_vini "s") ~name:"burster"
      ~burst:8
      ~handler:(fun _ -> ())
      ()
  in
  let inject = Process.open_queue proc () in
  for _ = 1 to 8 do
    ignore (inject (udp ()))
  done;
  Engine.run engine;
  Sspan.uninstall ();
  Trace.uninstall ();
  check Alcotest.int "all packets served" 8 (Process.packets_processed proc);
  check Alcotest.int "one breath" 1 (Process.breaths proc);
  let services =
    List.concat_map
      (fun tree ->
        List.filter
          (fun h -> h.Mspan.h_attribution = Sspan.Cpu_service)
          tree.Mspan.hops)
      (Mspan.trees recorder)
    |> List.sort (fun a b -> Time.compare a.Mspan.h_t0 b.Mspan.h_t0)
  in
  check Alcotest.int "one Cpu_service span per packet" 8
    (List.length services);
  List.iter
    (fun h ->
      check Alcotest.bool "positive width" true
        (Time.compare h.Mspan.h_t1 h.Mspan.h_t0 > 0))
    services;
  let rec tiled = function
    | a :: (b :: _ as rest) ->
        (* Contiguous, non-overlapping tiling of the breath window. *)
        check Alcotest.bool "spans tile the service window" true
          (Time.compare a.Mspan.h_t1 b.Mspan.h_t0 = 0);
        tiled rest
    | _ -> ()
  in
  tiled services;
  let first = List.hd services and last = List.nth services 7 in
  let window_s = Time.to_sec_f (Time.sub last.Mspan.h_t1 first.Mspan.h_t0) in
  let sum_s =
    List.fold_left (fun acc h -> acc +. Mspan.hop_duration_s h) 0.0 services
  in
  check (Alcotest.float 1e-12) "slices sum to the window" window_s sum_s

(* --- spans document: profile sections and counter tracks ----------------- *)

let test_spans_document_profile_sections () =
  let p = Profile.create () in
  let sink = Element.make "doc.sink" (fun _ -> ()) in
  Profile.install p;
  Profile.set_service_cost 0.002;
  Element.push sink (udp ());
  Profile.clear_service_cost ();
  Profile.uninstall ();
  let recorder = Vini_sim.Span.create ~capacity:16 () in
  let counters = [ ("c.one", [ (0.5, 1.0); (1.0, 2.0) ]) ] in
  let doc = Export.spans_document ~profile:p ~counters recorder in
  let member k = Export.member k doc in
  (match Option.bind (member "element_profile") Export.to_list with
  | Some rows -> check Alcotest.int "element_profile rows" 1 (List.length rows)
  | None -> Alcotest.fail "element_profile missing");
  (match Option.bind (member "collapsed") Export.to_list with
  | Some [ Export.Str line ] ->
      check Alcotest.string "collapsed line" "doc.sink 2000" line
  | _ -> Alcotest.fail "collapsed missing");
  (match Option.bind (member "traceEvents") Export.to_list with
  | Some evs ->
      let cs =
        List.filter
          (fun e ->
            match Option.bind (Export.member "ph" e) Export.to_str with
            | Some "C" -> true
            | _ -> false)
          evs
      in
      check Alcotest.int "counter events" 2 (List.length cs)
  | None -> Alcotest.fail "traceEvents missing");
  (* Without the optional arguments the document is unchanged. *)
  let plain = Export.spans_document recorder in
  check Alcotest.bool "no profile sections by default" true
    (Export.member "element_profile" plain = None
    && Export.member "collapsed" plain = None)

let suite =
  [
    Alcotest.test_case "element attribution" `Quick test_element_attribution;
    Alcotest.test_case "sharded engine telemetry" `Quick
      test_sharded_engine_telemetry;
    Alcotest.test_case "watermark monotonicity" `Quick
      test_watermark_monotonicity;
    Alcotest.test_case "timeline roundtrip+escaping" `Quick
      test_timeline_roundtrip_escaping;
    Alcotest.test_case "timeline domain byte-identity" `Slow
      test_timeline_domain_byte_identity;
    Alcotest.test_case "timeline Gc snapshot boundary" `Quick
      test_timeline_gc_snapshot_boundary;
    Alcotest.test_case "burst span per-hop tiling" `Quick
      test_burst_span_per_hop_tiling;
    Alcotest.test_case "spans document profile sections" `Quick
      test_spans_document_profile_sections;
  ]
