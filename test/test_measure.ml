(* Tests for the measurement tools: ping, iperf, tcpdump capture. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Ipstack = Vini_phys.Ipstack
module Ping = Vini_measure.Ping
module Iperf = Vini_measure.Iperf
module Tcpdump = Vini_measure.Tcpdump
module Tcp = Vini_transport.Tcp

let check = Alcotest.check

let test_ping_counts_and_rtt () =
  let engine = Engine.create ~seed:1 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.ms 12) () in
  let p = Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:100 () in
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.int "sent" 100 (Ping.sent p);
  check Alcotest.int "received" 100 (Ping.received p);
  check (Alcotest.float 0.5) "rtt = 24 ms" 24.0
    (Vini_std.Stats.mean (Ping.rtt_ms p));
  check (Alcotest.float 0.001) "no loss" 0.0 (Ping.loss_pct p);
  check Alcotest.bool "finished" true (Ping.finished p);
  check Alcotest.int "series complete" 100 (List.length (Ping.series p))

let test_ping_loss_accounting () =
  let engine = Engine.create ~seed:5 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.ms 5) ~loss:0.3 () in
  let p = Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:60 () in
  Engine.run ~until:(Time.sec 120) engine;
  check Alcotest.int "all probes sent despite loss" 60 (Ping.sent p);
  check Alcotest.bool
    (Printf.sprintf "loss observed (%.0f%%)" (Ping.loss_pct p))
    true
    (Ping.loss_pct p > 20.0)

let test_ping_flood_floor () =
  (* On a near-zero-delay path, ping -f paces at ~10 ms: 50 pings need
     about half a second. *)
  let engine = Engine.create ~seed:7 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.us 100) () in
  let p = Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:50 () in
  let finish_time = ref Time.zero in
  Ping.on_finish p (fun () -> finish_time := Engine.now engine);
  Engine.run ~until:(Time.sec 10) engine;
  let s = Time.to_sec_f !finish_time in
  check Alcotest.bool (Printf.sprintf "flood floor respected (%.2f s)" s) true
    (s > 0.45 && s < 0.65)

let test_ping_interval_mode () =
  let engine = Engine.create ~seed:9 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.ms 1) () in
  let p =
    Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:10
      ~mode:(Ping.Interval (Time.ms 500)) ()
  in
  let finish_time = ref Time.zero in
  Ping.on_finish p (fun () -> finish_time := Engine.now engine);
  Engine.run ~until:(Time.sec 20) engine;
  let s = Time.to_sec_f !finish_time in
  check Alcotest.bool (Printf.sprintf "interval pacing (%.2f s)" s) true
    (s > 4.4 && s < 5.2)

let test_iperf_tcp_measures_window () =
  let engine = Engine.create ~seed:11 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 10) () in
  let run =
    Iperf.tcp ~client ~server ~streams:4 ~rwnd:(32 * 1024) ~start:(Time.sec 1)
      ~warmup:(Time.sec 1) ~duration:(Time.sec 5) ()
  in
  Engine.run ~until:(Time.sec 8) engine;
  (* 4 streams x 32 KB / 20 ms RTT = 52 Mb/s theoretical ceiling. *)
  let mbps = Iperf.tcp_mbps run in
  check Alcotest.bool (Printf.sprintf "window-bound (%.1f Mb/s)" mbps) true
    (mbps > 30.0 && mbps < 55.0);
  check Alcotest.bool "bytes counted" true (Iperf.tcp_total_delivered run > 0);
  check Alcotest.int "clean path" 0 (Iperf.tcp_retransmits run + Iperf.tcp_timeouts run)

let test_iperf_udp_loss_and_jitter () =
  let engine = Engine.create ~seed:13 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 10) ~loss:0.1 () in
  let run =
    Iperf.udp ~client ~server ~rate_bps:2e6 ~start:(Time.sec 1)
      ~duration:(Time.sec 5) ()
  in
  Engine.run ~until:(Time.sec 8) engine;
  check Alcotest.bool
    (Printf.sprintf "udp loss (%.1f%%)" (Iperf.udp_loss_pct run))
    true
    (Iperf.udp_loss_pct run > 4.0);
  check Alcotest.bool "received some" true (Iperf.udp_received run > 0);
  (* Constant delay path: jitter near zero. *)
  check Alcotest.bool "jitter small" true (Iperf.udp_jitter_ms run < 1.0)

let test_tcpdump_capture () =
  let engine = Engine.create ~seed:17 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 5) () in
  let dump = Tcpdump.create engine in
  Tcp.listen ~stack:server ~port:5001
    ~on_accept:(fun conn -> Tcpdump.attach dump conn)
    ();
  let conn =
    Tcp.connect ~stack:client ~dst:(Ipstack.local_addr server) ~dst_port:5001 ()
  in
  Tcp.send conn 50_000;
  Tcp.close conn;
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.bool "captured segments" true (Tcpdump.count dump > 10);
  let cum = Tcpdump.cumulative_bytes dump in
  check Alcotest.bool "cumulative grows to total" true
    (match List.rev cum with (_, total) :: _ -> total = 50_000 | [] -> false);
  (* Monotonic non-decreasing cumulative series. *)
  let rec monotonic = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotonic rest
    | _ -> true
  in
  check Alcotest.bool "monotonic" true (monotonic cum);
  check Alcotest.bool "positions recorded" true
    (List.length (Tcpdump.segment_positions dump) > 10);
  (* Capture rows carry the packet id that keys into the flight
     recorder: present, positive, and not all the same. *)
  let ids = List.map (fun (_, id, _) -> id) (Tcpdump.packets dump) in
  check Alcotest.bool "ids positive" true (List.for_all (fun i -> i > 0) ids);
  check Alcotest.bool "ids vary across packets" true
    (List.sort_uniq compare ids |> List.length > 1)

let test_monitor_sampling_and_rate () =
  let engine = Engine.create () in
  let m = Vini_measure.Monitor.create ~engine ~interval:(Time.ms 100) () in
  let counter = ref 0.0 in
  Vini_measure.Monitor.gauge m ~name:"counter" (fun () -> !counter);
  (* The counter grows 10 units per second. *)
  Engine.every engine (Time.ms 10) (fun () ->
      counter := !counter +. 0.1;
      Time.compare (Engine.now engine) (Time.sec 5) < 0);
  Engine.run ~until:(Time.sec 3) engine;
  Vini_measure.Monitor.stop m;
  Engine.run ~until:(Time.sec 4) engine;
  let s = Vini_measure.Monitor.series m ~name:"counter" in
  check Alcotest.bool
    (Printf.sprintf "~30 samples (%d)" (List.length s))
    true
    (List.length s >= 28 && List.length s <= 31);
  let rates = Vini_measure.Monitor.rate m ~name:"counter" in
  List.iter
    (fun (_, r) ->
      check Alcotest.bool (Printf.sprintf "rate ~10/s (%.2f)" r) true
        (r > 8.0 && r < 12.0))
    rates;
  check Alcotest.(list string) "names" [ "counter" ]
    (Vini_measure.Monitor.names m)

let test_monitor_duplicate_gauge () =
  let engine = Engine.create () in
  let m = Vini_measure.Monitor.create ~engine () in
  Vini_measure.Monitor.gauge m ~name:"x" (fun () -> 0.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Monitor.gauge: duplicate name")
    (fun () -> Vini_measure.Monitor.gauge m ~name:"x" (fun () -> 0.0))

let test_monitor_counter_reset () =
  (* A counter that restarts mid-run (a process died and came back) must
     not produce negative rates: the post-reset increase is the new value. *)
  let engine = Engine.create () in
  let m = Vini_measure.Monitor.create ~engine ~interval:(Time.sec 1) () in
  let v = ref 0.0 in
  Vini_measure.Monitor.counter m ~name:"c" (fun () -> !v);
  Engine.every engine (Time.sec 1) (fun () ->
      (* 10, 20, 30, 5, 15, 25: a reset to 5 between t=3 and t=4. *)
      v := (if !v >= 30.0 then 5.0 else !v +. 10.0);
      Time.compare (Engine.now engine) (Time.sec 8) < 0);
  Engine.run ~until:(Time.sec 7) engine;
  Vini_measure.Monitor.stop m;
  check Alcotest.bool "declared counter" true
    (Vini_measure.Monitor.kind m ~name:"c" = Vini_measure.Monitor.Counter);
  let rates = Vini_measure.Monitor.rate m ~name:"c" in
  check Alcotest.bool "some rates" true (List.length rates >= 4);
  List.iter
    (fun (t, r) ->
      check Alcotest.bool (Printf.sprintf "rate at %.1f non-negative (%g)" t r)
        true (r >= 0.0))
    rates

(* --- export ------------------------------------------------------------- *)

module Export = Vini_measure.Export
module STrace = Vini_sim.Trace

let test_export_json_roundtrip () =
  (* A document with every node type, awkward strings and non-finite
     numbers must survive to_string |> of_string. *)
  let doc =
    Export.Obj
      [
        ("s", Export.Str "quotes \" backslash \\ newline \n tab \t");
        ("n", Export.Num 1.5e-9);
        ("i", Export.Num 42.0);
        ("inf", Export.Num infinity);
        ("arr", Export.Arr [ Export.Null; Export.Bool true; Export.Num 0.0 ]);
        ("nested", Export.Obj [ ("empty_a", Export.Arr []);
                                ("empty_o", Export.Obj []) ]);
      ]
  in
  match Export.of_string (Export.to_string doc) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      check Alcotest.bool "round-trips" true (parsed = doc);
      (match Export.of_string "{\"a\": [1,2]} trailing" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "trailing garbage accepted")

let test_export_document_roundtrip () =
  let engine = Engine.create () in
  let m = Vini_measure.Monitor.create ~engine ~interval:(Time.ms 500) () in
  let v = ref 0.0 in
  Vini_measure.Monitor.counter m ~name:"bytes" (fun () -> !v);
  Vini_measure.Monitor.gauge m ~name:"depth" (fun () -> 3.0);
  let h = Vini_std.Histogram.create () in
  List.iter (Vini_std.Histogram.add h) [ 0.001; 0.002; 0.004; 0.008 ];
  Vini_measure.Monitor.histogram m ~name:"lat_s" h;
  let tr = STrace.create ~capacity:16 () in
  STrace.install tr;
  Engine.every engine (Time.ms 250) (fun () ->
      v := !v +. 100.0;
      STrace.emit ~component:"t.q" (STrace.Packet_drop { reason = "x,y\"z"; bytes = 40 });
      Time.compare (Engine.now engine) (Time.sec 3) < 0);
  Engine.run ~until:(Time.sec 2) engine;
  Vini_measure.Monitor.stop m;
  STrace.uninstall ();
  let doc = Export.document ~trace:tr [ m ] in
  let text = Export.to_string doc in
  match Export.of_string text with
  | Error e -> Alcotest.failf "document does not parse: %s" e
  | Ok parsed ->
      let get k j = Option.get (Export.member k j) in
      check Alcotest.string "schema" Export.schema_version
        (Option.get (Export.to_str (get "schema" parsed)));
      let series = Option.get (Export.to_list (get "series" parsed)) in
      let names =
        List.map (fun s -> Option.get (Export.to_str (get "name" s))) series
      in
      check Alcotest.(list string) "series names" [ "bytes"; "depth" ] names;
      let kinds =
        List.map (fun s -> Option.get (Export.to_str (get "kind" s))) series
      in
      check Alcotest.(list string) "kinds" [ "counter"; "gauge" ] kinds;
      let points s = Option.get (Export.to_list (get "points" s)) in
      check Alcotest.bool "sampled" true (List.length (points (List.hd series)) >= 3);
      let hists = Option.get (Export.to_list (get "histograms" parsed)) in
      (match hists with
      | [ hj ] ->
          check Alcotest.string "hist name" "lat_s"
            (Option.get (Export.to_str (get "name" hj)));
          check (Alcotest.float 1e-9) "hist count" 4.0
            (Option.get (Export.to_float (get "count" hj)));
          check Alcotest.bool "p50 sane" true
            (Option.get (Export.to_float (get "p50" hj)) > 0.0)
      | _ -> Alcotest.fail "expected one histogram");
      let trace = get "trace" parsed in
      let events = Option.get (Export.to_list (get "events" trace)) in
      check Alcotest.int "trace events" (STrace.length tr) (List.length events);
      let ev = List.hd events in
      check Alcotest.string "reason survives escaping" "x,y\"z"
        (Option.get (Export.to_str (get "reason" ev)))

(* --- export edge cases --------------------------------------------------- *)

let roundtrip j =
  match Export.of_string (Export.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_export_string_escaping () =
  (* Quotes, backslashes and every control character must survive
     to_string/of_string unchanged. *)
  let controls = String.init 0x20 Char.chr in
  let nasty =
    [ "\"quoted\""; "back\\slash"; "\\\""; controls; "mixed \"\\\n\t\x01 end" ]
  in
  List.iter
    (fun s ->
      match roundtrip (Export.Str s) with
      | Export.Str s' -> check Alcotest.string "string round-trips" s s'
      | _ -> Alcotest.fail "string parsed as non-string")
    nasty;
  (* Escaping applies to object keys too. *)
  match roundtrip (Export.Obj [ ("a\"b\\c\nd", Export.Num 1.0) ]) with
  | Export.Obj [ (k, _) ] -> check Alcotest.string "key round-trips" "a\"b\\c\nd" k
  | _ -> Alcotest.fail "object shape lost"

let test_export_nonfinite_floats () =
  check Alcotest.string "nan degrades to null" "null"
    (Export.to_string (Export.Num Float.nan));
  check Alcotest.string "+inf" "1e999" (Export.to_string (Export.Num infinity));
  check Alcotest.string "-inf" "-1e999"
    (Export.to_string (Export.Num neg_infinity));
  (* The 1e999 spelling parses back as an infinity, so exports containing
     them still round-trip. *)
  (match roundtrip (Export.Num infinity) with
  | Export.Num v -> check Alcotest.bool "+inf round-trips" true (v = infinity)
  | _ -> Alcotest.fail "non-number");
  (match roundtrip (Export.Num neg_infinity) with
  | Export.Num v -> check Alcotest.bool "-inf round-trips" true (v = neg_infinity)
  | _ -> Alcotest.fail "non-number");
  (* NaN becomes Null: lossy by design, but still valid JSON. *)
  match roundtrip (Export.Num Float.nan) with
  | Export.Null -> ()
  | _ -> Alcotest.fail "nan should parse back as null"

let test_export_deep_nesting () =
  let depth = 500 in
  let deep = ref (Export.Num 7.0) in
  for _ = 1 to depth do
    deep := Export.Arr [ Export.Obj [ ("k", !deep) ] ]
  done;
  let rec unwrap n j =
    if n = 0 then j
    else
      match j with
      | Export.Arr [ Export.Obj [ ("k", inner) ] ] -> unwrap (n - 1) inner
      | _ -> Alcotest.fail "nesting shape lost"
  in
  match unwrap depth (roundtrip !deep) with
  | Export.Num v -> check (Alcotest.float 0.0) "payload survives" 7.0 v
  | _ -> Alcotest.fail "payload lost"

(* --- the flight recorder's cold half ------------------------------------- *)

module Sspan = Vini_sim.Span
module Mspan = Vini_measure.Span
module Trace = Vini_sim.Trace

(* Two hand-built causal trees: pkt 100 delivered through an encap (inner
   pkt 100, outer pkt 101, same orig), pkt 200 killed by TTL. *)
let synthetic_recorder () =
  let engine = Engine.create () in
  let tr = Trace.create ~categories:[ Trace.Category.Span ] () in
  Trace.install tr;
  let r = Sspan.create ~capacity:64 () in
  Sspan.install r;
  ignore
    (Engine.at engine (Time.ms 1) (fun () ->
         Sspan.origin ~pkt:100 ~orig:100 ~bytes:1500 ~component:"src" ();
         Sspan.origin ~pkt:200 ~orig:200 ~bytes:64 ~component:"probe" ()));
  ignore
    (Engine.at engine (Time.ms 4) (fun () ->
         Sspan.hop ~pkt:100 ~orig:100 ~component:"q" Sspan.Queueing
           ~t0:(Time.ms 1) ~t1:(Time.ms 2);
         Sspan.hop ~pkt:100 ~orig:100 ~component:"cpu" Sspan.Cpu_service
           ~t0:(Time.ms 2) ~t1:(Time.ms 3);
         Sspan.hop ~pkt:101 ~orig:100 ~component:"link" Sspan.Serialization
           ~t0:(Time.ms 3) ~t1:(Time.ms 4);
         Sspan.drop ~pkt:200 ~orig:200 ~component:"router"
           ~reason:"ttl-expired" ~bytes:64 ()));
  Engine.run engine;
  Sspan.uninstall ();
  Trace.uninstall ();
  r

let test_span_trees_and_breakdown () =
  let r = synthetic_recorder () in
  let trees = Mspan.trees r in
  check Alcotest.int "two trees" 2 (List.length trees);
  let t100 = List.find (fun t -> t.Mspan.tree_orig = 100) trees in
  let t200 = List.find (fun t -> t.Mspan.tree_orig = 200) trees in
  check Alcotest.int "tree 100: three hops" 3 (List.length t100.Mspan.hops);
  check Alcotest.int "tree 100: no drops" 0 (List.length t100.Mspan.drops);
  check Alcotest.string "root component" "src" (Mspan.root_component t100);
  check (Alcotest.float 1e-9) "total latency = 3 ms" 0.003
    (Mspan.total_latency t100);
  check Alcotest.bool "encap kept one tree" true
    (List.exists (fun h -> h.Mspan.h_pkt = 101) t100.Mspan.hops);
  check Alcotest.int "tree 200 died" 1 (List.length t200.Mspan.drops);
  let rows = Mspan.breakdown trees in
  check Alcotest.int "one row per category"
    (List.length Sspan.attributions) (List.length rows);
  let row a = List.find (fun x -> x.Mspan.attribution = a) rows in
  check (Alcotest.float 1e-9) "queueing 1 ms" 0.001 (row Sspan.Queueing).Mspan.total_s;
  check (Alcotest.float 1e-9) "cpu 1 ms" 0.001 (row Sspan.Cpu_service).Mspan.total_s;
  check Alcotest.int "propagation empty" 0 (row Sspan.Propagation).Mspan.hop_count;
  (match Mspan.breakdown_by_origin trees with
  | [ ("src", _); ("probe", _) ] -> ()
  | groups ->
      Alcotest.failf "unexpected origin groups: %s"
        (String.concat "," (List.map fst groups)));
  match Mspan.worst ~n:1 trees with
  | [ w ] -> check Alcotest.int "worst is the slow tree" 100 w.Mspan.tree_orig
  | _ -> Alcotest.fail "worst ?n did not cap"

let test_span_forensics_path () =
  let r = synthetic_recorder () in
  let forensics = Mspan.forensics (Mspan.trees r) in
  match forensics with
  | [ f ] ->
      check Alcotest.int "orig" 200 f.Mspan.f_orig;
      check Alcotest.string "site" "router" f.Mspan.f_site;
      check Alcotest.string "reason" "ttl-expired" f.Mspan.f_reason;
      check Alcotest.bool "path non-empty" true (f.Mspan.f_path <> []);
      (match f.Mspan.f_path with
      | Mspan.At_origin o :: _ ->
          check Alcotest.string "path starts at the origin" "probe"
            o.Mspan.o_component
      | _ -> Alcotest.fail "path must start at the origin")
  | fs -> Alcotest.failf "expected one forensic record, got %d" (List.length fs)

let test_spans_document () =
  let r = synthetic_recorder () in
  let doc = Export.spans_document ~worst:1 r in
  let parsed = roundtrip doc in
  let get k j = Option.get (Export.member k j) in
  check Alcotest.string "schema" Export.spans_schema_version
    (Option.get (Export.to_str (get "schema" parsed)));
  let events = Option.get (Export.to_list (get "traceEvents" parsed)) in
  (* 2 origins + 3 hops + 1 drop *)
  check Alcotest.int "trace events" 6 (List.length events);
  List.iter
    (fun ev ->
      check Alcotest.bool "event has name/ph/ts" true
        (Export.member "name" ev <> None
        && Export.member "ph" ev <> None
        && Export.member "ts" ev <> None))
    events;
  check Alcotest.bool "has X and i phases" true
    (let phases =
       List.filter_map (fun ev -> Option.bind (Export.member "ph" ev) Export.to_str) events
     in
     List.mem "X" phases && List.mem "i" phases);
  let drops = Option.get (Export.to_list (get "drops" parsed)) in
  check Alcotest.int "one drop" 1 (List.length drops);
  let path = Option.get (Export.to_list (get "path" (List.hd drops))) in
  check Alcotest.bool "drop path non-empty" true (path <> []);
  let worst = Option.get (Export.to_list (get "worst_paths" parsed)) in
  check Alcotest.int "worst capped at 1" 1 (List.length worst)

let suite =
  [
    Alcotest.test_case "ping counts and rtt" `Quick test_ping_counts_and_rtt;
    Alcotest.test_case "ping loss accounting" `Quick test_ping_loss_accounting;
    Alcotest.test_case "ping flood floor" `Quick test_ping_flood_floor;
    Alcotest.test_case "ping interval mode" `Quick test_ping_interval_mode;
    Alcotest.test_case "iperf tcp window maths" `Quick test_iperf_tcp_measures_window;
    Alcotest.test_case "iperf udp loss+jitter" `Quick test_iperf_udp_loss_and_jitter;
    Alcotest.test_case "tcpdump capture" `Quick test_tcpdump_capture;
    Alcotest.test_case "monitor sampling and rate" `Quick test_monitor_sampling_and_rate;
    Alcotest.test_case "monitor duplicate gauge" `Quick test_monitor_duplicate_gauge;
    Alcotest.test_case "monitor counter reset" `Quick test_monitor_counter_reset;
    Alcotest.test_case "export json roundtrip" `Quick test_export_json_roundtrip;
    Alcotest.test_case "export document roundtrip" `Quick
      test_export_document_roundtrip;
    Alcotest.test_case "export string escaping" `Quick
      test_export_string_escaping;
    Alcotest.test_case "export non-finite floats" `Quick
      test_export_nonfinite_floats;
    Alcotest.test_case "export deep nesting" `Quick test_export_deep_nesting;
    Alcotest.test_case "span trees and breakdown" `Quick
      test_span_trees_and_breakdown;
    Alcotest.test_case "span drop forensics" `Quick test_span_forensics_path;
    Alcotest.test_case "spans document" `Quick test_spans_document;
  ]
