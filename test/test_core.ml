(* Tests for the VINI core: experiment specs, deployment, event
   scheduling, upcalls, and simultaneous experiments. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Slice = Vini_phys.Slice
module Underlay = Vini_phys.Underlay
module Iias = Vini_overlay.Iias
module Experiment = Vini_core.Experiment
module Vini = Vini_core.Vini
module Ping = Vini_measure.Ping

let check = Alcotest.check

let link ?(w = 1) a b =
  { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 1; loss = 0.0; weight = w }

let phys () =
  Graph.create
    ~names:[| "p0"; "p1"; "p2"; "p3"; "p4"; "p5" |]
    ~links:[ link 0 1; link 1 2; link 2 3; link 3 4; link 4 5; link 5 0 ]

let tri () =
  Graph.create ~names:[| "v0"; "v1"; "v2" |] ~links:[ link 0 1; link 1 2; link 0 2 ]

(* --- spec validation --------------------------------------------------- *)

let test_validate_ok () =
  let spec = Experiment.make ~name:"ok" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ()) () in
  check Alcotest.bool "valid" true (Experiment.validate spec = Ok ())

let test_validate_rejects_shared_pnode () =
  let spec =
    Experiment.make ~name:"bad" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~embedding:(fun _ -> 0) ()
  in
  check Alcotest.bool "shared pnode rejected" true
    (Result.is_error (Experiment.validate spec))

let test_validate_rejects_bad_event () =
  let spec =
    Experiment.make ~name:"bad" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~events:[ Experiment.at 1.0 (Experiment.Fail_vlink (0, 9)) ]
      ()
  in
  check Alcotest.bool "out-of-range event" true
    (Result.is_error (Experiment.validate spec));
  let spec2 =
    Experiment.make ~name:"bad2" ~slice:(Slice.pl_vini "s")
      ~vtopo:
        (Graph.create ~names:[| "a"; "b"; "c" |] ~links:[ link 0 1; link 1 2 ])
      ~events:[ Experiment.at 1.0 (Experiment.Fail_vlink (0, 2)) ]
      ()
  in
  check Alcotest.bool "non-adjacent event" true
    (Result.is_error (Experiment.validate spec2))

let test_validate_rejects_bad_ingress () =
  let spec =
    Experiment.make ~name:"bad" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~ingresses:[ (7, Vini_net.Prefix.of_string "10.8.0.0/24") ]
      ()
  in
  check Alcotest.bool "bad ingress" true (Result.is_error (Experiment.validate spec))

let test_validate_rejects_nonexistent_pnode () =
  (* Regression: an embedding must not target a physical node the substrate
     does not have — deploy used to accept it and fail deep inside the
     overlay instead. *)
  let spec =
    Experiment.make ~name:"offmap" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~embedding:(fun v -> [| 0; 1; 99 |].(v)) ()
  in
  check Alcotest.bool "without a substrate: structurally fine" true
    (Experiment.validate spec = Ok ());
  check Alcotest.bool "against the substrate: rejected" true
    (Result.is_error (Experiment.validate ~phys:(phys ()) spec));
  (let engine = Engine.create ~seed:1 () in
   let vini = Vini.create ~engine ~graph:(phys ()) () in
   check Alcotest.bool "deploy raises" true
     (try
        ignore (Vini.deploy vini spec);
        false
      with Invalid_argument _ -> true));
  (* Negative targets need no substrate to be nonsense. *)
  let neg =
    Experiment.make ~name:"neg" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~embedding:(fun v -> v - 1) ()
  in
  check Alcotest.bool "negative id rejected" true
    (Result.is_error (Experiment.validate neg))

(* --- deploy and run ----------------------------------------------------- *)

let fresh_vini ?(seed = 42) () =
  let engine = Engine.create ~seed () in
  let vini = Vini.create ~engine ~graph:(phys ()) () in
  (engine, vini)

let test_deploy_and_event_timeline () =
  let engine, vini = fresh_vini () in
  let spec =
    Experiment.make ~name:"timeline" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~events:
        [
          Experiment.at 30.0 (Experiment.Fail_vlink (0, 1));
          Experiment.at 40.0 (Experiment.Restore_vlink (0, 1));
        ]
      ()
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.sec 25) engine;
  check Alcotest.bool "link up before event" true (Iias.vlink_is_up iias 0 1);
  Engine.run ~until:(Time.sec 35) engine;
  check Alcotest.bool "link failed on schedule" false (Iias.vlink_is_up iias 0 1);
  Engine.run ~until:(Time.sec 45) engine;
  check Alcotest.bool "link restored on schedule" true (Iias.vlink_is_up iias 0 1)

let test_deploy_rejects_invalid () =
  let _, vini = fresh_vini () in
  let spec =
    Experiment.make ~name:"bad" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~embedding:(fun _ -> 0) ()
  in
  check Alcotest.bool "deploy raises" true
    (try
       ignore (Vini.deploy vini spec);
       false
     with Invalid_argument _ -> true)

let test_custom_event_runs () =
  let engine, vini = fresh_vini () in
  let hit = ref false in
  let spec =
    Experiment.make ~name:"custom" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~events:[ Experiment.at 5.0 (Experiment.Custom ("mark", fun _ -> hit := true)) ]
      ()
  in
  Vini.start (Vini.deploy vini spec);
  Engine.run ~until:(Time.sec 4) engine;
  check Alcotest.bool "not yet" false !hit;
  Engine.run ~until:(Time.sec 6) engine;
  check Alcotest.bool "custom action ran" true !hit

let test_events_relative_to_start () =
  let engine, vini = fresh_vini () in
  let hit_at = ref Time.zero in
  let spec =
    Experiment.make ~name:"rel" ~slice:(Slice.pl_vini "s") ~vtopo:(tri ())
      ~events:
        [ Experiment.at 5.0 (Experiment.Custom ("t", fun _ -> hit_at := Engine.now engine)) ]
      ()
  in
  let inst = Vini.deploy vini spec in
  (* Start only at t=100. *)
  ignore (Engine.at engine (Time.sec 100) (fun () -> Vini.start inst));
  Engine.run ~until:(Time.sec 120) engine;
  check Alcotest.bool "event at epoch+5" true
    (Time.compare !hit_at (Time.sec 105) = 0);
  check Alcotest.bool "epoch recorded" true
    (Time.compare (Vini.epoch inst) (Time.sec 100) = 0)

(* --- simultaneous experiments ------------------------------------------- *)

let two_experiments ?(slice2 = Slice.pl_vini "exp2") () =
  let engine, vini = fresh_vini ~seed:77 () in
  let pair = Graph.create ~names:[| "a"; "b" |] ~links:[ link 0 1 ] in
  let s1 =
    Experiment.make ~name:"exp1" ~slice:(Slice.pl_vini "exp1") ~vtopo:pair
      ~embedding:(fun v -> [| 0; 1 |].(v)) ()
  in
  let s2 =
    Experiment.make ~name:"exp2" ~slice:slice2 ~vtopo:pair
      ~embedding:(fun v -> [| 0; 1 |].(v)) ()
  in
  let i1 = Vini.deploy vini s1 in
  let i2 = Vini.deploy vini s2 in
  Vini.start i1;
  Vini.start i2;
  Engine.run ~until:(Time.sec 20) engine;
  (engine, vini, i1, i2)

let test_two_experiments_coexist () =
  let engine, vini, i1, i2 = two_experiments () in
  check Alcotest.int "two instances" 2 (List.length (Vini.instances vini));
  (* Both overlays carry their own traffic on the same physical nodes. *)
  let ping_of inst =
    let iias = Vini.iias inst in
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 1))
      ~count:50 ()
  in
  let p1 = ping_of i1 and p2 = ping_of i2 in
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.int "exp1 traffic flows" 50 (Ping.received p1);
  check Alcotest.int "exp2 traffic flows" 50 (Ping.received p2)

let test_experiment_isolation_of_failures () =
  (* Failing exp1's virtual link must not disturb exp2. *)
  let engine, _, i1, i2 = two_experiments () in
  Iias.set_vlink_state (Vini.iias i1) 0 1 false;
  let p1 =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode (Vini.iias i1) 0))
      ~dst:(Iias.tap_addr (Iias.vnode (Vini.iias i1) 1))
      ~count:10 ()
  in
  let p2 =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode (Vini.iias i2) 0))
      ~dst:(Iias.tap_addr (Iias.vnode (Vini.iias i2) 1))
      ~count:10 ()
  in
  Engine.run ~until:(Time.sec 40) engine;
  check Alcotest.int "exp1 blackholed" 0 (Ping.received p1);
  check Alcotest.int "exp2 unaffected" 10 (Ping.received p2)

let test_upcalls_reach_all_experiments () =
  let engine, vini, i1, i2 = two_experiments () in
  let seen1 = ref [] and seen2 = ref [] in
  Vini.on_upcall i1 (fun e -> seen1 := e :: !seen1);
  Vini.on_upcall i2 (fun e -> seen2 := e :: !seen2);
  Underlay.set_link_state (Vini.underlay vini) 2 3 false;
  Engine.run ~until:(Time.sec 21) engine;
  check Alcotest.int "exp1 upcall" 1 (List.length !seen1);
  check Alcotest.int "exp2 upcall" 1 (List.length !seen2);
  check Alcotest.int "counters" 1 (Vini.upcalls_delivered i1)

let test_masked_physical_failure_keeps_overlay_alive () =
  (* The 6-cycle has two disjoint paths between any pair; with masking on,
     a physical failure reroutes under the overlay and the virtual link
     keeps working (the §3.1 fate-sharing problem VINI points out). *)
  let engine, vini, i1, _ = two_experiments () in
  Underlay.set_link_state (Vini.underlay vini) 0 1 false;
  Engine.run ~until:(Time.sec 25) engine;
  let p =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode (Vini.iias i1) 0))
      ~dst:(Iias.tap_addr (Iias.vnode (Vini.iias i1) 1))
      ~count:10 ()
  in
  Engine.run ~until:(Time.sec 40) engine;
  check Alcotest.int "masked: tunnel survives" 10 (Ping.received p)

let test_mirror_spec () =
  let g = phys () in
  let spec = Experiment.mirror ~name:"m" ~slice:(Slice.pl_vini "m") ~graph:g () in
  check Alcotest.bool "mirror valid" true (Experiment.validate spec = Ok ());
  check Alcotest.int "same node count" (Graph.node_count g)
    (Graph.node_count spec.Experiment.vtopo)

let suite =
  [
    Alcotest.test_case "spec validates" `Quick test_validate_ok;
    Alcotest.test_case "spec rejects shared pnode" `Quick test_validate_rejects_shared_pnode;
    Alcotest.test_case "spec rejects bad events" `Quick test_validate_rejects_bad_event;
    Alcotest.test_case "spec rejects bad ingress" `Quick test_validate_rejects_bad_ingress;
    Alcotest.test_case "spec rejects nonexistent pnode" `Quick
      test_validate_rejects_nonexistent_pnode;
    Alcotest.test_case "deploy + event timeline" `Quick test_deploy_and_event_timeline;
    Alcotest.test_case "deploy rejects invalid" `Quick test_deploy_rejects_invalid;
    Alcotest.test_case "custom events run" `Quick test_custom_event_runs;
    Alcotest.test_case "events relative to start" `Quick test_events_relative_to_start;
    Alcotest.test_case "two experiments coexist" `Quick test_two_experiments_coexist;
    Alcotest.test_case "virtual failures isolated" `Quick test_experiment_isolation_of_failures;
    Alcotest.test_case "upcalls reach experiments" `Quick test_upcalls_reach_all_experiments;
    Alcotest.test_case "masked physical failure" `Quick test_masked_physical_failure_keeps_overlay_alive;
    Alcotest.test_case "mirror construction" `Quick test_mirror_spec;
  ]
