(* Section 7's first speculative usage mode: "a network operator could run
   multiple routing protocols in parallel on the same physical
   infrastructure".  Two virtual networks mirror the same 5-site ring on
   the same physical nodes — one runs OSPF, the other RIP — and the same
   link failure hits both at the same instant.  Watching them reconverge
   side by side is exactly the kind of experiment VINI exists for.

     dune exec examples/parallel_protocols.exe *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Experiment = Vini_core.Experiment
module Vini = Vini_core.Vini
module Ping = Vini_measure.Ping

let () =
  let engine = Engine.create ~seed:777 () in
  let link a b w =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.ms 3;
      loss = 0.0;
      weight = w;
    }
  in
  let ring =
    Graph.create
      ~names:[| "r0"; "r1"; "r2"; "r3"; "r4" |]
      ~links:[ link 0 1 1; link 1 2 1; link 2 3 1; link 3 4 1; link 4 0 1 ]
  in
  let vini = Vini.create ~engine ~graph:ring () in
  (* The same failure timeline for both experiments: r0-r1 dies at t=30. *)
  let events = [ Experiment.at 30.0 (Experiment.Fail_vlink (0, 1)) ] in
  let ospf_exp =
    Vini.deploy vini
      (Experiment.make ~name:"ospf-net" ~slice:(Slice.pl_vini "ospf-net")
         ~vtopo:ring ~routing:Iias.default_ospf ~events ())
  in
  let rip_exp =
    Vini.deploy vini
      (Experiment.make ~name:"rip-net" ~slice:(Slice.pl_vini "rip-net")
         ~vtopo:ring
         ~routing:(Iias.Rip_routing { scale = 0.2 })
         ~events ())
  in
  Vini.start ospf_exp;
  Vini.start rip_exp;
  Engine.run ~until:(Time.sec 25) engine;

  (* Ping r0 -> r1 in both overlays through the failure. *)
  let watch inst =
    let iias = Vini.iias inst in
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 1))
      ~count:160
      ~mode:(Ping.Interval (Time.ms 500))
      ()
  in
  let p_ospf = watch ospf_exp and p_rip = watch rip_exp in
  Engine.run ~until:(Time.sec 115) engine;

  Printf.printf
    "the r0--r1 virtual link fails at t=30 in BOTH virtual networks; they \
     share every physical node.\n\n";
  Printf.printf "%-6s %-28s %-28s\n" "t(s)" "OSPF network (rtt ms)"
    "RIP network (rtt ms)";
  let series p = Ping.series p in
  let at_time series t =
    List.find_opt (fun (ts, _) -> Float.abs (ts -. t) < 0.26) series
  in
  let so = series p_ospf and sr = series p_rip in
  List.iter
    (fun t ->
      let cell s =
        match at_time s t with
        | Some (_, rtt) -> Printf.sprintf "%.1f" rtt
        | None -> "lost/converging"
      in
      Printf.printf "%-6.0f %-28s %-28s\n" t (cell so) (cell sr))
    [ 26.; 28.; 30.; 32.; 34.; 36.; 38.; 40.; 45.; 50.; 55.; 60.; 65.; 70.;
      80.; 90.; 100. ];
  let describe name p =
    Printf.printf "%s: %d/%d replies (%.1f%% lost during reconvergence)\n" name
      (Ping.received p) (Ping.sent p) (Ping.loss_pct p)
  in
  print_newline ();
  describe "OSPF network" p_ospf;
  describe "RIP network " p_rip;
  Printf.printf
    "\nOSPF detects in ~dead-interval (10 s) and switches to the 4-hop path; \
     RIP's timeout (scaled: %.0f s) makes it slower — two protocols, one \
     infrastructure, one failure.\n"
    (0.2 *. 180.0)
