(* Simultaneous experiments on shared infrastructure (§3.4): two research
   slices run their own virtual networks over the same PlanetLab-like
   nodes.  One is a well-behaved PL-VINI slice with a CPU reservation;
   the other hammers the CPU from a default fair share.  The reservation
   is what keeps the first experiment's results repeatable.

     dune exec examples/multi_experiment.exe *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Slice = Vini_phys.Slice
module Underlay = Vini_phys.Underlay
module Iias = Vini_overlay.Iias
module Experiment = Vini_core.Experiment
module Vini = Vini_core.Vini
module Iperf = Vini_measure.Iperf
module Ping = Vini_measure.Ping

let link a b =
  {
    Graph.a;
    b;
    bandwidth_bps = 100e6;
    delay = Time.ms 5;
    loss = 0.0;
    weight = 1;
  }

let run ~reserved () =
  let engine = Engine.create ~seed:4242 () in
  let phys =
    Graph.create ~names:[| "siteA"; "siteB"; "siteC" |]
      ~links:[ link 0 1; link 1 2 ]
  in
  (* Shared PlanetLab-style machines: contention is the whole point. *)
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:phys ~profile () in
  let vtopo =
    Graph.create ~names:[| "x"; "y"; "z" |] ~links:[ link 0 1; link 1 2 ]
  in
  let slice1 =
    if reserved then Slice.pl_vini "careful-exp"
    else Slice.default_share "careful-exp"
  in
  let e1 =
    Vini.deploy vini
      (Experiment.make ~name:"careful" ~slice:slice1 ~vtopo ())
  in
  let e2 =
    Vini.deploy vini
      (Experiment.make ~name:"noisy" ~slice:(Slice.default_share "noisy-exp")
         ~vtopo ())
  in
  Vini.start e1;
  Vini.start e2;
  Engine.run ~until:(Time.sec 25) engine;
  (* The noisy experiment blasts 40 Mb/s of UDP through its own overlay
     for the whole measurement window. *)
  let i2 = Vini.iias e2 in
  let _noise =
    Iperf.udp
      ~client:(Iias.tap (Iias.vnode i2 0))
      ~server:(Iias.tap (Iias.vnode i2 2))
      ~rate_bps:40e6 ~start:(Time.sec 26) ~duration:(Time.sec 16) ()
  in
  (* The careful experiment measures TCP throughput and latency. *)
  let i1 = Vini.iias e1 in
  let tcp =
    Iperf.tcp
      ~client:(Iias.tap (Iias.vnode i1 0))
      ~server:(Iias.tap (Iias.vnode i1 2))
      ~streams:10 ~start:(Time.sec 26) ~warmup:(Time.sec 2)
      ~duration:(Time.sec 10) ()
  in
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode i1 0))
      ~dst:(Iias.tap_addr (Iias.vnode i1 2))
      ~count:500 ()
  in
  Engine.run ~until:(Time.sec 45) engine;
  (Iperf.tcp_mbps tcp, Vini_std.Stats.mean (Ping.rtt_ms ping),
   Vini_std.Stats.stddev (Ping.rtt_ms ping))

let () =
  Printf.printf
    "two experiments share three physical nodes; the 'noisy' slice blasts \
     40 Mb/s of UDP while the 'careful' slice measures.\n\n";
  let mbps_d, rtt_d, std_d = run ~reserved:false () in
  let mbps_r, rtt_r, std_r = run ~reserved:true () in
  Printf.printf "%-34s %12s %14s\n" "careful experiment's slice" "TCP Mb/s"
    "ping ms (std)";
  Printf.printf "%-34s %12.1f %9.1f (%.2f)\n" "default fair share" mbps_d rtt_d
    std_d;
  Printf.printf "%-34s %12.1f %9.1f (%.2f)\n"
    "PL-VINI (25% reservation + rt)" mbps_r rtt_r std_r;
  Printf.printf
    "\nthe reservation + real-time boost is what makes the experiment \
     repeatable while sharing nodes (§4.1.2).\n"
