(* The BGP multiplexer (§6.1): two experiments share VINI's single eBGP
   adjacency with a neighbouring domain.  The mux confines each to its
   allocated sub-block, rate-limits update storms, and redistributes
   externally learned routes to everyone.

     dune exec examples/bgp_mux_demo.exe *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Prefix = Vini_net.Prefix
module Addr = Vini_net.Addr
module Bgp = Vini_routing.Bgp
module Bgp_mux = Vini_routing.Bgp_mux

let pfx = Prefix.of_string

let () =
  let engine = Engine.create ~seed:65000 () in
  let wire deliver msg ~size =
    ignore size;
    ignore (Engine.after engine (Time.ms 20) (fun () -> deliver msg))
  in
  (* VINI's multiplexer owns AS 64512 and the 10.128.0.0/9 allocation. *)
  let mux =
    Bgp_mux.create ~engine ~asn:64512 ~rid:1 ~addr:(Addr.of_string "198.32.154.10")
      ~vini_block:(pfx "10.128.0.0/9")
  in
  (* The neighbouring domain: one real router, one real session. *)
  let upstream =
    Bgp.create ~engine
      ~config:
        (Bgp.default_config ~asn:701 ~rid:7
           ~next_hop_self:(Addr.of_string "198.32.200.1")
           ~originate:[ pfx "64.236.0.0/16"; pfx "0.0.0.0/0" ])
      ()
  in
  let up_peer = ref 0 and mux_ext = ref 0 in
  mux_ext :=
    Bgp_mux.attach_external mux ~name:"AS701"
      ~send:(wire (fun m -> Bgp.receive upstream ~peer:!up_peer m));
  up_peer :=
    Bgp.add_peer upstream ~name:"vini-mux" ~kind:`Ebgp
      ~send:(wire (fun m -> Bgp_mux.receive mux ~peer:!mux_ext m))
      ();
  (* Two experiments, each a BGP speaker on a virtual node. *)
  let experiment name rid prefixes allowed rate =
    let speaker =
      Bgp.create ~engine
        ~config:
          (Bgp.default_config ~asn:64512 ~rid
             ~next_hop_self:(Addr.of_string "10.200.0.1")
             ~originate:(List.map pfx prefixes))
        ()
    in
    let sp = ref 0 and mp = ref 0 in
    mp :=
      Bgp_mux.attach_client mux
        ~spec:
          {
            Bgp_mux.client_name = name;
            allowed = List.map pfx allowed;
            max_announce_per_sec = rate;
            burst = 4;
          }
        ~send:(wire (fun m -> Bgp.receive speaker ~peer:!sp m));
    sp :=
      Bgp.add_peer speaker ~name:"mux" ~kind:`Ibgp
        ~send:(wire (fun m -> Bgp_mux.receive mux ~peer:!mp m))
        ();
    speaker
  in
  (* exp1 is polite; exp2 tries to announce space it does not own. *)
  let exp1 = experiment "exp1" 11 [ "10.128.0.0/16" ] [ "10.128.0.0/16" ] 10.0 in
  let exp2 =
    experiment "exp2" 12
      [ "10.129.0.0/16"; "10.64.0.0/16"; "192.0.2.0/24" ]
      [ "10.129.0.0/16" ] 10.0
  in
  Bgp_mux.start mux;
  Bgp.start upstream;
  Bgp.start exp1;
  Bgp.start exp2;
  Engine.run ~until:(Time.sec 60) engine;

  Printf.printf "what the neighbouring domain (AS 701) learned from VINI:\n";
  List.iter
    (fun (p, (path : Bgp.path)) ->
      Printf.printf "  %-18s as-path %s\n" (Prefix.to_string p)
        (String.concat " " (List.map string_of_int path.Bgp.as_path)))
    (Bgp.loc_rib upstream);
  Printf.printf "\nwhat exp1 learned through the shared adjacency:\n";
  List.iter
    (fun (p, (path : Bgp.path)) ->
      Printf.printf "  %-18s as-path %s\n" (Prefix.to_string p)
        (String.concat " " (List.map string_of_int path.Bgp.as_path)))
    (Bgp.loc_rib exp1);
  Printf.printf "\nmux enforcement on exp2: %d announcements rejected \
                 (outside its 10.129.0.0/16 allocation)\n"
    (Bgp_mux.rejected mux ~client:"exp2");
  Printf.printf "exp2's own view still works: it %s the upstream default.\n"
    (if Bgp.best exp2 (pfx "0.0.0.0/0") <> None then "learned" else "missed");
  Printf.printf
    "\none adjacency, many experiments: stability and scaling concerns from \
     §3.4 handled in the mux.\n"
