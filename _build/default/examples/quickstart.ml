(* Quickstart: build a virtual network on a physical substrate, let OSPF
   converge, and send traffic across it.

     dune exec examples/quickstart.exe

   Walks through the core API: an engine, an underlay, a slice, an IIAS
   overlay, and the measurement tools. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Ping = Vini_measure.Ping

let () =
  (* 1. One simulation engine drives everything; the seed makes the whole
     run reproducible. *)
  let engine = Engine.create ~seed:2006 () in

  (* 2. A physical substrate: four sites in a ring, gigabit links. *)
  let link a b delay_ms =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.of_ms_f delay_ms;
      loss = 0.0;
      weight = int_of_float (delay_ms *. 100.0);
    }
  in
  let phys =
    Graph.create
      ~names:[| "princeton"; "atlanta"; "berkeley"; "seattle" |]
      ~links:[ link 0 1 6.0; link 1 2 14.0; link 2 3 4.0; link 3 0 17.0 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph:phys ()
  in

  (* 3. An experiment slice with PL-VINI resource guarantees (25% CPU
     reservation + real-time priority), and an IIAS overlay mirroring the
     physical ring.  OSPF with the paper's 5 s/10 s timers is the default
     control plane. *)
  let slice = Slice.pl_vini "quickstart" in
  let iias =
    Iias.create ~underlay ~slice ~vtopo:phys ~embedding:Fun.id ()
  in
  Iias.start iias;

  (* 4. Let routing converge, then look at a node's world. *)
  Engine.run ~until:(Time.sec 20) engine;
  let princeton = Iias.vnode iias 0 in
  let seattle = Iias.vnode iias 3 in
  Printf.printf "princeton's FIB after convergence:\n";
  List.iter
    (fun (p, action) ->
      Printf.printf "  %-18s %s\n" (Vini_net.Prefix.to_string p) action)
    (Iias.fib_entries princeton);

  (* 5. Applications attach to a virtual node's tap interface. *)
  let ping =
    Ping.start ~stack:(Iias.tap princeton) ~dst:(Iias.tap_addr seattle)
      ~count:100 ()
  in
  Engine.run ~until:(Time.sec 40) engine;
  Printf.printf "\nping %s -> %s: %d/%d replies, rtt %s ms\n"
    (Iias.vname princeton) (Iias.vname seattle) (Ping.received ping)
    (Ping.sent ping)
    (Format.asprintf "%a" Vini_std.Stats.pp_summary (Ping.rtt_ms ping));

  (* 6. Controlled experimentation: fail the cheap virtual link and watch
     OSPF move traffic the long way around the ring. *)
  Printf.printf "\nfailing virtual link princeton--seattle inside Click...\n";
  Iias.set_vlink_state iias 0 3 false;
  Engine.run ~until:(Time.sec 60) engine;
  let ping2 =
    Ping.start ~stack:(Iias.tap princeton) ~dst:(Iias.tap_addr seattle)
      ~count:100 ()
  in
  Engine.run ~until:(Time.sec 80) engine;
  Printf.printf "after reroute: %d/%d replies, rtt %s ms\n"
    (Ping.received ping2) (Ping.sent ping2)
    (Format.asprintf "%a" Vini_std.Stats.pp_summary (Ping.rtt_ms ping2));
  let s = Iias.stats princeton in
  Printf.printf
    "\nprinceton data plane: %d forwarded, %d delivered, %d dropped on the \
     failed tunnel\n"
    s.Iias.forwarded s.Iias.delivered s.Iias.tunnel_drops
