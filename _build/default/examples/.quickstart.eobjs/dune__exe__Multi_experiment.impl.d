examples/multi_experiment.ml: Printf Vini_core Vini_measure Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
