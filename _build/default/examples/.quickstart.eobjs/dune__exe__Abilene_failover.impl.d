examples/abilene_failover.ml: Float List Printf String Vini_rcc Vini_repro Vini_sim Vini_topo
