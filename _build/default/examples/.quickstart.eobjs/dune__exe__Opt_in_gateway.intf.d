examples/opt_in_gateway.mli:
