examples/bgp_mux_demo.ml: List Printf String Vini_net Vini_routing Vini_sim
