examples/parallel_protocols.ml: Float List Printf Vini_core Vini_measure Vini_overlay Vini_phys Vini_sim Vini_topo
