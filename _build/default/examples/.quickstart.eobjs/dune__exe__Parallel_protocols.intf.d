examples/parallel_protocols.mli:
