examples/multi_experiment.mli:
