examples/dht_keyspace.mli:
