examples/opt_in_gateway.ml: Fun Printf Vini_net Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo Vini_transport
