examples/quickstart.ml: Format Fun List Printf Vini_measure Vini_net Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
