examples/dht_keyspace.ml: Fun List Printf Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
