examples/bgp_mux_demo.mli:
