examples/quickstart.mli:
