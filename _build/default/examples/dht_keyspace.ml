(* §4.2.1 made concrete: "one could implement a new addressing scheme in
   IIAS, for instance based on DHTs, simply by writing new forwarding and
   encapsulation table elements."

   This example carves a flat key space out of 10.224.0.0/11, gives each
   virtual node an arc of it by consistent hashing, and advertises the
   arcs through the experiment's ordinary OSPF — so packets addressed *by
   key* are forwarded by the unmodified data plane straight to the key's
   owner.  A toy key-value store rides on top.

     dune exec examples/dht_keyspace.exe *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Keyspace = Vini_overlay.Keyspace

let () =
  let engine = Engine.create ~seed:31337 () in
  let link a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 3; loss = 0.0; weight = 1 }
  in
  let g =
    Graph.create
      ~names:[| "tokyo"; "frankfurt"; "saopaulo"; "boston"; "nairobi"; "sydney" |]
      ~links:
        [ link 0 1; link 1 2; link 2 3; link 3 4; link 4 5; link 5 0;
          link 0 3; link 1 4 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph:g ()
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "dht") ~vtopo:g
      ~embedding:Fun.id ()
  in
  (* The new addressing scheme is installed BEFORE routing starts; its
     arcs ride OSPF like any other prefix. *)
  let ks = Keyspace.create iias () in
  Iias.start iias;
  Engine.run ~until:(Time.sec 25) engine;

  Printf.printf "key space: %d bits inside 10.224.0.0/11\n" (Keyspace.key_bits ks);
  Printf.printf "arc prefixes advertised per node:\n";
  List.iter
    (fun (v, prefixes) ->
      Printf.printf "  %-10s %3d prefixes\n"
        (Iias.vname (Iias.vnode iias v))
        (List.length prefixes))
    (Keyspace.arcs ks);

  (* Store objects from whichever node "has" them. *)
  let objects =
    [ "kernel-2.6.12.tar"; "abilene-configs"; "sigcomm06-paper.pdf";
      "click-modular-router"; "xorp-1.1-src"; "measurements-week34" ]
  in
  print_newline ();
  List.iteri
    (fun i name ->
      Keyspace.put ks ~from:(i mod 6) ~name ~size:((i + 1) * 10_000)
        ~on_ack:(fun ~stored_at ->
          Printf.printf "  put %-24s key=%7d -> stored at %s\n" name
            (Keyspace.key_of_name ks name)
            (Iias.vname (Iias.vnode iias stored_at))))
    objects;
  Engine.run ~until:(Time.sec 30) engine;

  (* Fetch everything from one corner of the world. *)
  Printf.printf "\nfetching everything from %s:\n" (Iias.vname (Iias.vnode iias 5));
  List.iter
    (fun name ->
      Keyspace.get ks ~from:5 ~name ~on_result:(fun ~found ~size ~owner ->
          Printf.printf "  get %-24s %s (%d bytes, owner %s)\n" name
            (if found then "hit " else "MISS")
            size
            (Iias.vname (Iias.vnode iias owner))))
    objects;
  Keyspace.get ks ~from:5 ~name:"no-such-object"
    ~on_result:(fun ~found ~size:_ ~owner ->
      Printf.printf "  get %-24s %s (owner %s answers authoritatively)\n"
        "no-such-object"
        (if found then "hit " else "MISS")
        (Iias.vname (Iias.vnode iias owner)));
  Engine.run ~until:(Time.sec 40) engine;
  Printf.printf
    "\nno IP destination was configured for these objects anywhere: the \
     routing is by key, carried by unmodified OSPF + Click.\n"
