lib/topo/datasets.ml: Array Float Graph Hashtbl List Printf Vini_sim Vini_std
