lib/topo/graph.mli: Format Vini_sim
