lib/topo/graph.ml: Array Format Fun Hashtbl List Option Vini_sim Vini_std
