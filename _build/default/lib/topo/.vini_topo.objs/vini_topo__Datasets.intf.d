lib/topo/datasets.mli: Graph Vini_sim Vini_std
