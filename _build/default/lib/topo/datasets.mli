(** Built-in topologies used by the paper's evaluation.

    Delays are one-way propagation calibrated so that end-to-end RTTs match
    the values §5 reports (D.C.–Seattle 76 ms via the north path, 93 ms via
    the south path, Chicago–D.C. ≈24.4 ms on the PlanetLab microbenchmark
    path); OSPF weights are proportional to fiber distance, which is how
    Abilene's IGP was configured in 2006. *)

(** The 11-PoP Abilene backbone (Figure 7). *)
module Abilene : sig
  val topology : unit -> Graph.t

  val seattle : int
  val sunnyvale : int
  val los_angeles : int
  val denver : int
  val kansas_city : int
  val houston : int
  val atlanta : int
  val indianapolis : int
  val chicago : int
  val new_york : int
  val washington : int

  val pop_names : string array
end

(** The 3-machine DETER/Emulab chain of §5.1.1: Src — Fwdr — Sink over
    gigabit Ethernet with negligible propagation delay. *)
module Deter : sig
  val topology : unit -> Graph.t

  val src : int
  val fwdr : int
  val sink : int
end

(** The 3 PlanetLab nodes co-located with Abilene PoPs used in §5.1.2:
    Chicago — New York — Washington D.C. (Figure 5). *)
module Planetlab3 : sig
  val topology : unit -> Graph.t

  val chicago : int
  val new_york : int
  val washington : int
end

(** National LambdaRail, VINI's other planned substrate ("we are working
    with the National Lambda Rail and Abilene Internet2 backbones to
    deploy VINI nodes", §1).  The 2006 NLR PacketNet footprint: 10 PoPs
    on the national fiber ring with a Denver–Chicago chord. *)
module Nlr : sig
  val topology : unit -> Graph.t

  val seattle : int
  val sunnyvale : int
  val los_angeles : int
  val denver : int
  val chicago : int
  val pittsburgh : int
  val washington : int
  val atlanta : int
  val jacksonville : int
  val houston : int
end

val ring : n:int -> ?bandwidth_bps:float -> ?delay:Vini_sim.Time.t -> unit -> Graph.t
(** n nodes in a cycle; weights 1. @raise Invalid_argument for n < 3. *)

val star : leaves:int -> ?bandwidth_bps:float -> ?delay:Vini_sim.Time.t -> unit -> Graph.t
(** Hub node 0 with [leaves] spokes. @raise Invalid_argument for leaves < 1. *)

val grid : rows:int -> cols:int -> ?bandwidth_bps:float -> ?delay:Vini_sim.Time.t -> unit -> Graph.t
(** rows x cols mesh, node id = row*cols + col.
    @raise Invalid_argument unless both dimensions are positive. *)

val waxman :
  rng:Vini_std.Rng.t ->
  n:int ->
  ?alpha:float ->
  ?beta:float ->
  ?bandwidth_bps:float ->
  unit ->
  Graph.t
(** Waxman random topology on the unit square; guaranteed connected (a
    random spanning tree is added first).  Link delays follow Euclidean
    distance at 5 µs/km on a 4000 km square; weights are delay-derived. *)
