type 'a t = {
  q : 'a Queue.t;
  size_of : 'a -> int;
  max_packets : int option;
  max_bytes : int option;
  mutable bytes : int;
  mutable drops : int;
}

let create ?max_packets ?max_bytes ~size_of () =
  { q = Queue.create (); size_of; max_packets; max_bytes; bytes = 0; drops = 0 }

let would_overflow t x =
  let over_packets =
    match t.max_packets with
    | None -> false
    | Some m -> Queue.length t.q >= m
  in
  let over_bytes =
    match t.max_bytes with
    | None -> false
    | Some m -> t.bytes + t.size_of x > m
  in
  over_packets || over_bytes

let push t x =
  if would_overflow t x then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    Queue.push x t.q;
    t.bytes <- t.bytes + t.size_of x;
    true
  end

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some x ->
      t.bytes <- t.bytes - t.size_of x;
      Some x

let peek t = Queue.peek_opt t.q
let length t = Queue.length t.q
let bytes t = t.bytes
let is_empty t = Queue.is_empty t.q

let clear t =
  Queue.clear t.q;
  t.bytes <- 0

let drops t = t.drops
