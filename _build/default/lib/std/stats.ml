type t = {
  mutable samples_rev : float list;
  mutable count : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    samples_rev = [];
    count = 0;
    sum = 0.0;
    sum_sq = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let add t x =
  t.samples_rev <- x :: t.samples_rev;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let is_empty t = t.count = 0
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let stddev t =
  if t.count < 2 then 0.0
  else
    let n = float_of_int t.count in
    let var = (t.sum_sq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    sqrt (Float.max 0.0 var)

let min t = if t.count = 0 then 0.0 else t.min_v
let max t = if t.count = 0 then 0.0 else t.max_v

let mdev t =
  if t.count = 0 then 0.0
  else
    let m = mean t in
    let dev = List.fold_left (fun acc x -> acc +. Float.abs (x -. m)) 0.0 t.samples_rev in
    dev /. float_of_int t.count

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let a = Array.of_list t.samples_rev in
    Array.sort compare a;
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) - 1
    in
    let rank = Stdlib.max 0 (Stdlib.min (t.count - 1) rank) in
    a.(rank)
  end

let sum t = t.sum
let samples t = List.rev t.samples_rev

let merge a b =
  let t = create () in
  List.iter (add t) (samples a);
  List.iter (add t) (samples b);
  t

let pp_summary ppf t =
  Format.fprintf ppf "min/avg/max/mdev = %.3f/%.3f/%.3f/%.3f" (min t) (mean t)
    (max t) (mdev t)

module Jitter = struct
  type j = { mutable prev_transit : float option; mutable jitter : float }

  let create () = { prev_transit = None; jitter = 0.0 }

  (* RFC 1889: J = J + (|D(i-1, i)| - J) / 16 where D is the difference in
     packet transit times. *)
  let observe j ~sent ~received =
    let transit = received -. sent in
    (match j.prev_transit with
    | None -> ()
    | Some prev ->
        let d = Float.abs (transit -. prev) in
        j.jitter <- j.jitter +. ((d -. j.jitter) /. 16.0));
    j.prev_transit <- Some transit

  let value j = j.jitter
end
