lib/std/stats.ml: Array Float Format List Stdlib
