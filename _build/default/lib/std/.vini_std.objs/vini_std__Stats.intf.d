lib/std/stats.mli: Format
