lib/std/rng.mli:
