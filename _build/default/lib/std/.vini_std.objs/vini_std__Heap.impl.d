lib/std/heap.ml: Array
