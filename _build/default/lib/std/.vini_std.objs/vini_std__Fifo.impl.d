lib/std/fifo.ml: Queue
