lib/std/rng.ml: Array Float Int64
