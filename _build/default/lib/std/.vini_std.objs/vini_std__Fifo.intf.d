lib/std/fifo.mli:
