lib/std/heap.mli:
