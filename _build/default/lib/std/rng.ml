type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t n =
  assert (n > 0);
  (* Keep 62 bits: [Int64.to_int] would otherwise land the high bit on the
     native int's sign. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  bits mod n

let float t x =
  (* 53 random mantissa bits scaled into [0, 1). *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  u /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t lo hi = lo +. float t (hi -. lo)

let exponential t mean =
  let u = float t 1.0 in
  -. mean *. log (1.0 -. u)

let normal t ~mean ~stddev =
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto t ~scale ~shape =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
