(** Bounded FIFO with byte accounting.

    Models drop-tail queues: a NIC transmit queue, a UDP socket receive
    buffer, a Click [Queue] element.  The bound may be expressed in packets,
    in bytes, or both; pushes that would exceed either bound are rejected
    (the caller counts the drop). *)

type 'a t

val create : ?max_packets:int -> ?max_bytes:int -> size_of:('a -> int) -> unit -> 'a t
(** [size_of] reports an element's size in bytes.  Omitted bounds are
    unlimited. *)

val push : 'a t -> 'a -> bool
(** [push t x] enqueues and returns [true], or returns [false] (drop-tail)
    when a bound would be exceeded. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option
val length : 'a t -> int
val bytes : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val drops : 'a t -> int
(** Number of rejected pushes since creation. *)
