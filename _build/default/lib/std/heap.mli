(** Array-backed binary min-heap.

    Used by the event queue and by Dijkstra.  Elements are ordered by a
    comparison function supplied at creation; ties are broken by insertion
    order so the heap is stable, which keeps simulation runs deterministic
    when many events share a timestamp. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in arbitrary order. *)
