(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that a run is reproducible bit-for-bit from its seed.  The
    generator is SplitMix64: fast, statistically sound for simulation
    purposes, and trivially splittable so independent subsystems can own
    independent streams that do not interleave. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian by Box–Muller (one fresh draw per call). *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto draw with minimum [scale] and tail index [shape]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
