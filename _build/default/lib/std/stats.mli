(** Sample statistics for measurement reports.

    [t] accumulates float samples and answers the aggregate questions the
    paper's tables ask: mean, (sample) standard deviation, min/max, ping's
    [mdev] (mean absolute deviation from the mean), and percentiles.
    Samples are kept, so memory is O(n); measurement runs in this codebase
    collect at most a few hundred thousand samples. *)

type t

val create : unit -> t

val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** 0 on an empty accumulator. *)

val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 when n < 2. *)

val min : t -> float
val max : t -> float

val mdev : t -> float
(** Mean absolute deviation from the mean, as reported by [ping]. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], nearest-rank method. *)

val sum : t -> float
val samples : t -> float list
(** Samples in insertion order. *)

val merge : t -> t -> t
(** New accumulator holding both sample sets. *)

val pp_summary : Format.formatter -> t -> unit
(** "min/avg/max/mdev = a/b/c/d" ping-style line. *)

(** Interarrival jitter per RFC 1889 §A.8, as computed by iperf's UDP test:
    a smoothed estimate updated per packet from transit-time differences. *)
module Jitter : sig
  type j

  val create : unit -> j

  val observe : j -> sent:float -> received:float -> unit
  (** Feed one packet's send and receive timestamps (seconds). *)

  val value : j -> float
  (** Current jitter estimate in seconds. *)
end
