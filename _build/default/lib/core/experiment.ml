module Time = Vini_sim.Time
module Graph = Vini_topo.Graph
module Iias = Vini_overlay.Iias

type action =
  | Fail_vlink of int * int
  | Restore_vlink of int * int
  | Fail_plink of int * int
  | Restore_plink of int * int
  | Set_vlink_loss of int * int * float
  | Set_vlink_bandwidth of int * int * float option
  | Set_vlink_cost of int * int * int
  | Custom of string * (Iias.t -> unit)

type event = { at : Time.t; action : action }

type spec = {
  exp_name : string;
  slice : Vini_phys.Slice.t;
  vtopo : Graph.t;
  embedding : int -> int;
  routing : Iias.routing_choice;
  ingresses : (int * Vini_net.Prefix.t) list;
  egresses : int list;
  events : event list;
}

let make ~name ~slice ~vtopo ?(embedding = Fun.id)
    ?(routing = Iias.default_ospf) ?(ingresses = []) ?(egresses = [])
    ?(events = []) () =
  {
    exp_name = name;
    slice;
    vtopo;
    embedding;
    routing;
    ingresses;
    egresses;
    events;
  }

let mirror ~name ~slice ~graph ?(events = []) () =
  make ~name ~slice ~vtopo:graph ~events ()

let at seconds action = { at = Time.of_sec_f seconds; action }

let validate spec =
  let n = Graph.node_count spec.vtopo in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seen = Hashtbl.create n in
  for v = 0 to n - 1 do
    let p = spec.embedding v in
    if Hashtbl.mem seen p then
      err "virtual nodes %d and %d share physical node %d" (Hashtbl.find seen p)
        v p
    else Hashtbl.replace seen p v
  done;
  let check_vlink what a b =
    if a < 0 || a >= n || b < 0 || b >= n then
      err "%s references node out of range (%d, %d)" what a b
    else if Graph.find_link spec.vtopo a b = None then
      err "%s references non-adjacent nodes (%d, %d)" what a b
  in
  List.iter
    (fun ev ->
      if Time.compare ev.at Time.zero < 0 then err "event before t=0";
      match ev.action with
      | Fail_vlink (a, b) -> check_vlink "Fail_vlink" a b
      | Restore_vlink (a, b) -> check_vlink "Restore_vlink" a b
      | Set_vlink_loss (a, b, loss) ->
          check_vlink "Set_vlink_loss" a b;
          if loss < 0.0 || loss > 1.0 then err "loss outside [0,1]"
      | Set_vlink_bandwidth (a, b, rate) ->
          check_vlink "Set_vlink_bandwidth" a b;
          (match rate with
          | Some r when r <= 0.0 -> err "bandwidth must be positive"
          | Some _ | None -> ())
      | Set_vlink_cost (a, b, cost) ->
          check_vlink "Set_vlink_cost" a b;
          if cost <= 0 then err "cost must be positive"
      | Fail_plink _ | Restore_plink _ | Custom _ -> ())
    spec.events;
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= n then err "ingress node %d out of range" v)
    spec.ingresses;
  List.iter
    (fun v -> if v < 0 || v >= n then err "egress node %d out of range" v)
    spec.egresses;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))
