lib/core/vini.mli: Experiment Vini_overlay Vini_phys Vini_sim Vini_topo
