lib/core/vini.ml: Experiment List Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
