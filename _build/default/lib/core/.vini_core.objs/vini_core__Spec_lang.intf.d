lib/core/spec_lang.mli: Experiment Vini_phys Vini_topo
