lib/core/spec_lang.ml: Array Experiment Hashtbl List Option Printf Result String Vini_net Vini_overlay Vini_phys Vini_sim Vini_topo
