lib/core/experiment.ml: Fun Hashtbl List Printf String Vini_net Vini_overlay Vini_phys Vini_sim Vini_topo
