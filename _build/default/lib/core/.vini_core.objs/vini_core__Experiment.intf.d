lib/core/experiment.mli: Vini_net Vini_overlay Vini_phys Vini_sim Vini_topo
