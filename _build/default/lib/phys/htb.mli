(** Hierarchical token bucket for node egress bandwidth (§4.1.1).

    PlanetLab uses the Linux HTB queueing discipline to give each slice
    "fair share access to, and minimum rate guarantees for, outgoing
    network bandwidth".  This is that scheduler, two levels deep: a root
    rate (the node's NIC) and per-class assured/ceiling rates.

    Service order when the link frees up: backlogged classes still under
    their assured rate first (round-robin among them), then classes
    under their ceiling (borrowing spare capacity, round-robin), else
    wait for tokens.  Per-class queues are drop-tail. *)

type t
type cls

val create :
  engine:Vini_sim.Engine.t ->
  rate_bps:float ->
  out:(Vini_net.Packet.t -> unit) ->
  unit ->
  t
(** [rate_bps] is the root (NIC) rate; [out] receives packets as the
    scheduler releases them. *)

val add_class :
  t ->
  name:string ->
  ?assured_bps:float ->
  ?ceil_bps:float ->
  ?queue_bytes:int ->
  unit ->
  cls
(** Defaults: no assurance (0), ceiling = root rate, 128 KB queue.
    @raise Invalid_argument on duplicate names or assured > ceil. *)

val find_class : t -> string -> cls option

val default_class : t -> cls
(** Pre-created class for unclassified traffic (no assurance). *)

val enqueue : t -> cls -> Vini_net.Packet.t -> bool
(** [false] = class queue full, packet dropped (counted). *)

val class_drops : cls -> int
val class_sent_bytes : cls -> int
val backlog : cls -> int
(** Packets waiting in the class queue. *)
