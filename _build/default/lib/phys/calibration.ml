let reference_ghz = 2.8
let syscall_us = 5.0

(* poll + recvfrom + sendto + 3 gettimeofday = 6 syscalls ~ 30 us, the rest
   is Click element work; copies scale with size. *)
let click_base_us = 13.0
let click_per_byte_us = 0.016
let click_cost_us ~size = click_base_us +. (click_per_byte_us *. float_of_int size)

let kernel_forward_us = 3.0
let kernel_local_us = 3.0
let nic_latency_us = 30.0
let nic_jitter_us = 100.0
let link_queue_bytes = 262_144
let udp_rcvbuf_bytes = 65_536
let burst_cpu_budget = Vini_sim.Time.us 500

let wake_dedicated_us = (2.0, 10.0)
let wake_realtime_us = (20.0, 120.0)

let wake_shared_core = (0.05, 0.4)
let wake_shared_mid_weight = 0.148
let wake_shared_mid_mean_ms = 1.2
let wake_shared_tail_weight = 0.0025
let wake_shared_tail = (8.0, 90.0)

(* Competing runnable slices: usually none or one, occasionally a burst of
   heavy contention. *)
let shared_active_slices () =
 fun rng ->
  let u = Vini_std.Rng.float rng 1.0 in
  if u < 0.70 then 0
  else if u < 0.90 then 1
  else if u < 0.97 then 1 + Vini_std.Rng.int rng 3
  else 4 + Vini_std.Rng.int rng 8

let default_reservation = 0.25
