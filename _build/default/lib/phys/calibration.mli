(** Every calibrated constant in the physical-substrate model.

    Each value is tied to a passage of the paper (section numbers below) or
    derived from one of its measurements.  Centralising them makes the
    model auditable and lets the ablation benches vary them. *)

val reference_ghz : float
(** 2.8 — the DETER pc2800 Xeons of §5.1.1; all CPU costs below are quoted
    at this clock and scaled linearly for slower nodes. *)

val syscall_us : float
(** 5.0 — measured cost per system call reported in §5.1.1. *)

val click_base_us : float
val click_per_byte_us : float
(** User-space (Click) per-packet CPU cost = base + per_byte * size, at the
    reference clock.  The base covers the poll/recvfrom/sendto plus 3x
    gettimeofday pattern strace revealed (§5.1.1); the size term covers
    copies.  Calibrated so a 1500-byte datagram costs ~40 us, putting the
    user-space forwarding ceiling near 200 Mb/s as Table 2 measured. *)

val click_cost_us : size:int -> float
(** [click_base_us +. click_per_byte_us * size]. *)

val kernel_forward_us : float
(** Per-packet in-kernel IP forwarding cost: Table 2's 940 Mb/s at ~48%
    CPU gives ~6 us/packet at 2.8 GHz. *)

val kernel_local_us : float
(** Local delivery / ICMP echo handling cost. *)

val nic_latency_us : float
(** Fixed NIC + interrupt latency charged once per link traversal at each
    receiving host; 4 traversals * ~90 us + propagation reproduces the
    0.414 ms LAN RTT of Table 3. *)

val nic_jitter_us : float
(** Uniform jitter bound on the NIC latency (Table 3 mdev 0.089 ms). *)

val link_queue_bytes : int
(** Drop-tail transmit queue per link direction (256 KB). *)

val udp_rcvbuf_bytes : int
(** Socket receive buffer for the Click process's tunnel socket; overflow
    while the process is descheduled is the loss mechanism of Figure 6. *)

val burst_cpu_budget : Vini_sim.Time.t
(** Maximum CPU time a process consumes per scheduling episode before the
    scheduler re-evaluates contention. *)

(** {2 PlanetLab scheduler behaviour (§4.1.2, §5.1.2)} *)

val wake_dedicated_us : float * float
(** Uniform wake-up latency bounds on a dedicated (DETER) machine. *)

val wake_realtime_us : float * float
(** Wake-up latency bounds for a process boosted to real-time priority:
    it "immediately jumps to the head of the run-queue". *)

(** Default fair-share wake-up latency is a three-part mixture, heavy
    tailed: mostly sub-millisecond, sometimes a few milliseconds, rarely a
    multi-tens-of-milliseconds stall (many runnable slices).  Calibrated
    against Table 5 (avg 27.7 ms, stddev 4.8 ms, max 80.9 ms vs the
    network's 24.5 ms floor). *)

val wake_shared_core : float * float      (* uniform, ms *)
val wake_shared_mid_weight : float
val wake_shared_mid_mean_ms : float       (* exponential, ms *)
val wake_shared_tail_weight : float
val wake_shared_tail : float * float      (* uniform, ms *)

val shared_active_slices : unit -> (Vini_std.Rng.t -> int)
(** Sampler for the number of simultaneously runnable competing slices in
    a scheduling episode; determines the fair-share CPU fraction
    1/(1+n).  Mostly idle with occasional bursts, per §5.1.2's
    observation that Abilene PlanetLab nodes see fluctuating demand. *)

val default_reservation : float
(** 0.25 — the 25% CPU reservation PL-VINI grants an experiment slice. *)
