(** A PlanetLab-style slice: the unit of resource allocation (§4.1.1).

    A slice names an experiment and carries the CPU-scheduling parameters
    VINI can grant it: a fair share (always), an optional CPU reservation
    (a guaranteed minimum fraction), and an optional real-time priority
    boost (§4.1.2).  Processes created on physical nodes belong to a slice
    and inherit its scheduling treatment. *)

type t = {
  name : string;
  mutable reservation : float;  (** guaranteed CPU fraction in [0,1]; 0 = none *)
  mutable realtime : bool;      (** Linux real-time priority boost *)
}

val create : ?reservation:float -> ?realtime:bool -> string -> t

val default_share : string -> t
(** Plain PlanetLab fair share: no reservation, no boost. *)

val pl_vini : string -> t
(** The PL-VINI treatment of §5.1.2: 25% reservation plus real-time
    priority. *)

val pp : Format.formatter -> t -> unit
