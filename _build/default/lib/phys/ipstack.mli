(** A minimal host IP stack: L4 demultiplexing over some transmit function.

    Both a physical node's kernel (public address) and an IIAS virtual
    host interface (the [tap0] device with a 10.0.0.0/8 address, §4.1.3)
    present this same surface to applications: bind a UDP or TCP port,
    receive matching packets, send packets.  ICMP echo requests are
    answered automatically, like a kernel, unless a handler overrides it —
    which is what lets ping measure both substrates uniformly. *)

type t

val create :
  engine:Vini_sim.Engine.t ->
  local_addr:Vini_net.Addr.t ->
  tx:(Vini_net.Packet.t -> unit) ->
  unit ->
  t

val engine : t -> Vini_sim.Engine.t
val local_addr : t -> Vini_net.Addr.t
val set_tx : t -> (Vini_net.Packet.t -> unit) -> unit

val send : t -> Vini_net.Packet.t -> unit
(** Hand a packet to the interface for transmission. *)

val deliver : t -> Vini_net.Packet.t -> unit
(** Packet arriving from the network: demux to a bound port handler,
    auto-answer ICMP echo, or count an unmatched drop. *)

val bind_udp : t -> port:int -> (Vini_net.Packet.t -> unit) -> unit
(** @raise Invalid_argument when the port is already bound. *)

val bind_tcp : t -> port:int -> (Vini_net.Packet.t -> unit) -> unit
val unbind_udp : t -> port:int -> unit
val unbind_tcp : t -> port:int -> unit

val alloc_ephemeral : t -> int
(** A fresh high port (49152+), never reused within a run. *)

val set_icmp_handler : t -> (Vini_net.Packet.t -> unit) -> unit
(** Replace kernel echo behaviour (used by ping clients to catch replies). *)

val unmatched : t -> int
(** Packets that found no bound handler. *)
