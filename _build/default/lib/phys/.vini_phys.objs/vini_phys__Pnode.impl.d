lib/phys/pnode.ml: Calibration Cpu Htb Ipstack Lazy Vini_net Vini_sim Vini_std
