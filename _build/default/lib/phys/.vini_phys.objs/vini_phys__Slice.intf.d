lib/phys/slice.mli: Format
