lib/phys/plink.ml: Array Calibration Vini_net Vini_sim Vini_std
