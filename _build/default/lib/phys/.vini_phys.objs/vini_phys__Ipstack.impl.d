lib/phys/ipstack.ml: Hashtbl Printf Vini_net Vini_sim
