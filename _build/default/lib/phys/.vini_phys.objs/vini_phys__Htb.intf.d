lib/phys/htb.mli: Vini_net Vini_sim
