lib/phys/pnode.mli: Cpu Ipstack Vini_net Vini_sim Vini_std
