lib/phys/underlay.ml: Array Calibration Cpu Hashtbl Ipstack List Plink Pnode Vini_net Vini_sim Vini_std Vini_topo
