lib/phys/htb.ml: Float List Option Vini_net Vini_sim Vini_std
