lib/phys/plink.mli: Vini_net Vini_sim Vini_std
