lib/phys/slice.ml: Calibration Format
