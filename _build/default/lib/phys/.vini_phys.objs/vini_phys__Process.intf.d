lib/phys/process.mli: Pnode Slice Vini_net Vini_sim
