lib/phys/underlay.mli: Cpu Plink Pnode Vini_net Vini_sim Vini_std Vini_topo
