lib/phys/cpu.ml: Calibration Float Slice Vini_sim Vini_std
