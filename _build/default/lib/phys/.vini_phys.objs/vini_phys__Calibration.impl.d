lib/phys/calibration.ml: Vini_sim Vini_std
