lib/phys/calibration.mli: Vini_sim Vini_std
