lib/phys/cpu.mli: Slice Vini_sim Vini_std
