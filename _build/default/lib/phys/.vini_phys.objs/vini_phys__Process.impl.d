lib/phys/process.ml: Array Calibration Cpu Option Pnode Slice Vini_net Vini_sim Vini_std
