lib/phys/ipstack.mli: Vini_net Vini_sim
