type t = {
  name : string;
  mutable reservation : float;
  mutable realtime : bool;
}

let create ?(reservation = 0.0) ?(realtime = false) name =
  if reservation < 0.0 || reservation > 1.0 then
    invalid_arg "Slice.create: reservation out of [0,1]";
  { name; reservation; realtime }

let default_share name = create name
let pl_vini name = create ~reservation:Calibration.default_reservation ~realtime:true name

let pp ppf t =
  Format.fprintf ppf "%s (reservation %.0f%%%s)" t.name (100.0 *. t.reservation)
    (if t.realtime then ", rt" else "")
