module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Prefix = Vini_net.Prefix

type path = {
  origin_asn : int;
  as_path : int list;
  next_hop : Vini_net.Addr.t;
  local_pref : int;
  med : int;
}

type update = {
  withdraw : Prefix.t list;
  announce : (Prefix.t * path) list;
}

type msg = Open of { asn : int; rid : int } | Keepalive | Update of update
type Packet.control += Msg of msg

let msg_size = function
  | Open _ -> 29
  | Keepalive -> 19
  | Update u ->
      23
      + (5 * List.length u.withdraw)
      + List.fold_left
          (fun acc (_, p) -> acc + 12 + (2 * List.length p.as_path))
          0 u.announce

type peer_kind = [ `Ebgp | `Ibgp ]
type peer_id = int

type config = {
  asn : int;
  rid : int;
  hold_time : Time.t;
  mrai : Time.t;
  reconnect : Time.t;
  next_hop_self : Vini_net.Addr.t;
  originate : Prefix.t list;
}

let default_config ~asn ~rid ~next_hop_self ~originate =
  {
    asn;
    rid;
    hold_time = Time.sec 90;
    mrai = Time.ms 300;
    reconnect = Time.sec 10;
    next_hop_self;
    originate;
  }

module Pmap = Map.Make (Prefix)

type change = Announce of path | Withdrawn

type peer = {
  pid : peer_id;
  pname : string;
  kind : peer_kind;
  chan : Rchan.t;
  export : Prefix.t -> bool;
  import : Prefix.t -> path -> bool;
  mutable established : bool;
  mutable import_rejected : int;
  mutable adj_in : path Pmap.t;
  mutable hold_timer : Engine.handle option;
  mutable pending : change Pmap.t;   (* MRAI batch *)
  mutable mrai_timer : Engine.handle option;
}

type t = {
  engine : Engine.t;
  config : config;
  rib : Rib.t option;
  mutable peers : peer list;
  mutable originated : Prefix.t list;
  mutable loc : (path * peer_id option) Pmap.t;  (* best + learned-from *)
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable session_resets : int;
  mutable started : bool;
}

let create ~engine ~config ?rib () =
  {
    engine;
    config;
    rib;
    peers = [];
    originated = config.originate;
    loc = Pmap.empty;
    updates_sent = 0;
    updates_received = 0;
    session_resets = 0;
    started = false;
  }

(* Decision process: local_pref desc, AS-path length asc, MED asc,
   eBGP-learned over iBGP.  Peer-id tie-break happens in [decide]. *)
let compare_paths a b =
  let c = compare b.local_pref a.local_pref in
  if c <> 0 then c
  else
    let c = compare (List.length a.as_path) (List.length b.as_path) in
    if c <> 0 then c
    else
      let c = compare a.med b.med in
      if c <> 0 then c
      else 0

let self_path t =
  {
    origin_asn = t.config.asn;
    as_path = [];
    next_hop = t.config.next_hop_self;
    local_pref = 1000;
    med = 0;
  }

let find_peer t pid = List.find_opt (fun p -> p.pid = pid) t.peers

let post t peer m =
  t.updates_sent <-
    (match m with Update _ -> t.updates_sent + 1 | Open _ | Keepalive -> t.updates_sent);
  Rchan.post peer.chan (Msg m) ~size:(msg_size m)

(* Queue a change for a peer, honouring MRAI batching. *)
let rec enqueue_change t peer prefix change =
  peer.pending <- Pmap.add prefix change peer.pending;
  if peer.mrai_timer = None then
    peer.mrai_timer <-
      Some
        (Engine.after t.engine t.config.mrai (fun () ->
             peer.mrai_timer <- None;
             flush_pending t peer))

and flush_pending t peer =
  if peer.established && not (Pmap.is_empty peer.pending) then begin
    let withdraw, announce =
      Pmap.fold
        (fun prefix change (w, a) ->
          match change with
          | Withdrawn -> (prefix :: w, a)
          | Announce p -> (w, (prefix, p) :: a))
        peer.pending ([], [])
    in
    peer.pending <- Pmap.empty;
    post t peer (Update { withdraw; announce })
  end
  else peer.pending <- Pmap.empty

let exported t peer ~learned_from prefix path =
  if not (peer.export prefix) then None
  else
    match learned_from with
    | Some pid when pid = peer.pid -> None (* never echo back *)
    | learned -> (
        let from_kind =
          match learned with
          | None -> `Local
          | Some pid -> (
              match find_peer t pid with
              | Some p -> (p.kind :> [ `Ebgp | `Ibgp | `Local ])
              | None -> `Local)
        in
        match (from_kind, peer.kind) with
        | `Ibgp, `Ibgp -> None (* classic full-mesh rule *)
        | (`Ebgp | `Ibgp | `Local), `Ebgp ->
            Some
              {
                path with
                as_path = t.config.asn :: path.as_path;
                next_hop = t.config.next_hop_self;
                local_pref = 100;
              }
        | (`Ebgp | `Local), `Ibgp -> Some path)

let advertise_change t prefix =
  let entry = Pmap.find_opt prefix t.loc in
  List.iter
    (fun peer ->
      if peer.established then
        match entry with
        | Some (path, learned_from) -> (
            match exported t peer ~learned_from prefix path with
            | Some p -> enqueue_change t peer prefix (Announce p)
            | None -> enqueue_change t peer prefix Withdrawn)
        | None -> enqueue_change t peer prefix Withdrawn)
    t.peers

let install_rib t prefix entry =
  match t.rib with
  | None -> ()
  | Some rib -> (
      match entry with
      | Some (path, learned_from) ->
          let proto =
            match learned_from with
            | None -> Rib.Static (* locally originated: do not install *)
            | Some pid -> (
                match find_peer t pid with
                | Some p when p.kind = `Ebgp -> Rib.Ebgp
                | Some _ -> Rib.Ibgp
                | None -> Rib.Ibgp)
          in
          if learned_from <> None then
            Rib.update rib ~proto prefix
              (Some { Rib.next_hop = path.next_hop; metric = 0; proto })
      | None ->
          Rib.update rib ~proto:Rib.Ebgp prefix None;
          Rib.update rib ~proto:Rib.Ibgp prefix None)

let decide t prefix =
  let candidates =
    (if List.exists (Prefix.equal prefix) t.originated then
       [ (self_path t, None) ]
     else [])
    @ List.filter_map
        (fun peer ->
          match Pmap.find_opt prefix peer.adj_in with
          | Some p when peer.established -> Some (p, Some peer.pid)
          | Some _ | None -> None)
        t.peers
  in
  let best =
    match candidates with
    | [] -> None
    | _ ->
        let kind_rank = function
          | None -> 0 (* local *)
          | Some pid -> (
              match find_peer t pid with
              | Some p when p.kind = `Ebgp -> 1
              | Some _ -> 2
              | None -> 3)
        in
        let cmp (p1, from1) (p2, from2) =
          let c = compare_paths p1 p2 in
          if c <> 0 then c
          else
            let c = compare (kind_rank from1) (kind_rank from2) in
            if c <> 0 then c
            else compare from1 from2
        in
        Some (List.hd (List.sort cmp candidates))
  in
  let old = Pmap.find_opt prefix t.loc in
  if old <> best then begin
    t.loc <-
      (match best with
      | Some e -> Pmap.add prefix e t.loc
      | None -> Pmap.remove prefix t.loc);
    install_rib t prefix best;
    advertise_change t prefix
  end

let peer_full_table t peer =
  (* Freshly established session: advertise our whole view. *)
  Pmap.iter
    (fun prefix (path, learned_from) ->
      match exported t peer ~learned_from prefix path with
      | Some p -> enqueue_change t peer prefix (Announce p)
      | None -> ())
    t.loc

let rec peer_down t peer =
  if peer.established then begin
    peer.established <- false;
    t.session_resets <- t.session_resets + 1;
    let affected = Pmap.fold (fun p _ acc -> p :: acc) peer.adj_in [] in
    peer.adj_in <- Pmap.empty;
    (match peer.hold_timer with Some h -> Engine.cancel h | None -> ());
    peer.hold_timer <- None;
    (match peer.mrai_timer with Some h -> Engine.cancel h | None -> ());
    peer.mrai_timer <- None;
    peer.pending <- Pmap.empty;
    Rchan.reset peer.chan;
    List.iter (decide t) affected;
    (* Try to re-establish. *)
    ignore
      (Engine.after t.engine t.config.reconnect (fun () ->
           if not peer.established then
             post t peer (Open { asn = t.config.asn; rid = t.config.rid })))
  end

and reset_hold t peer =
  (match peer.hold_timer with Some h -> Engine.cancel h | None -> ());
  peer.hold_timer <-
    Some (Engine.after t.engine t.config.hold_time (fun () -> peer_down t peer))

let handle_msg t peer m =
  match m with
  | Open _ ->
      reset_hold t peer;
      if not peer.established then begin
        peer.established <- true;
        (* Answer so the other side establishes too, then sync tables. *)
        post t peer (Open { asn = t.config.asn; rid = t.config.rid });
        peer_full_table t peer
      end
  | Keepalive -> reset_hold t peer
  | Update u ->
      reset_hold t peer;
      t.updates_received <- t.updates_received + 1;
      let touched = ref [] in
      List.iter
        (fun prefix ->
          if Pmap.mem prefix peer.adj_in then begin
            peer.adj_in <- Pmap.remove prefix peer.adj_in;
            touched := prefix :: !touched
          end)
        u.withdraw;
      List.iter
        (fun (prefix, path) ->
          (* Loop detection, then the peer's import policy. *)
          if List.mem t.config.asn path.as_path then ()
          else if not (peer.import prefix path) then
            peer.import_rejected <- peer.import_rejected + 1
          else begin
            peer.adj_in <- Pmap.add prefix path peer.adj_in;
            touched := prefix :: !touched
          end)
        u.announce;
      List.iter (decide t) !touched

let receive t ~peer:pid msg =
  match find_peer t pid with
  | None -> ()
  | Some peer ->
      if not (Rchan.receive peer.chan msg) then
        (* Not an ARQ frame: ignore unknown raw control traffic. *)
        ()

let add_peer t ~name ~kind ~send ?(export = fun _ -> true)
    ?(import = fun _ _ -> true) () =
  let pid = List.length t.peers in
  let rec peer =
    lazy
      {
        pid;
        pname = name;
        kind;
        chan =
          Rchan.create ~engine:t.engine ~send
            ~deliver:(fun m ->
              match m with
              | Msg m -> handle_msg t (Lazy.force peer) m
              | _ -> ())
            ();
        export;
        import;
        established = false;
        import_rejected = 0;
        adj_in = Pmap.empty;
        hold_timer = None;
        pending = Pmap.empty;
        mrai_timer = None;
      }
  in
  let peer = Lazy.force peer in
  t.peers <- t.peers @ [ peer ];
  pid

let start t =
  if not t.started then begin
    t.started <- true;
    List.iter (fun prefix -> decide t prefix) t.originated;
    List.iter
      (fun peer ->
        post t peer (Open { asn = t.config.asn; rid = t.config.rid }))
      t.peers;
    let keepalive_every =
      Time.of_sec_f (Time.to_sec_f t.config.hold_time /. 3.0)
    in
    Engine.every t.engine keepalive_every (fun () ->
        List.iter
          (fun peer -> if peer.established then post t peer Keepalive)
          t.peers;
        true)
  end

let established t pid =
  match find_peer t pid with Some p -> p.established | None -> false

let loc_rib t = List.map (fun (p, (path, _)) -> (p, path)) (Pmap.bindings t.loc)
let best t prefix = Option.map fst (Pmap.find_opt prefix t.loc)

let announce_prefix t prefix =
  if not (List.exists (Prefix.equal prefix) t.originated) then begin
    t.originated <- prefix :: t.originated;
    decide t prefix
  end

let withdraw_prefix t prefix =
  if List.exists (Prefix.equal prefix) t.originated then begin
    t.originated <- List.filter (fun p -> not (Prefix.equal p prefix)) t.originated;
    decide t prefix
  end

let import_rejections t pid =
  match find_peer t pid with Some p -> p.import_rejected | None -> 0

let updates_sent t = t.updates_sent
let updates_received t = t.updates_received
let session_resets t = t.session_resets
