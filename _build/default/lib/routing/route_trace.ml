module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Prefix = Vini_net.Prefix
module Addr = Vini_net.Addr

type entry = { at : Time.t; change : Rib.change }

type recorder = {
  engine : Engine.t;
  mutable entries_rev : entry list;
}

let recorder ~engine () = { engine; entries_rev = [] }

let tap r fea change =
  r.entries_rev <- { at = Engine.now r.engine; change } :: r.entries_rev;
  fea change

let entries r = List.rev r.entries_rev

let proto_of_string = function
  | "connected" -> Some Rib.Connected
  | "static" -> Some Rib.Static
  | "ebgp" -> Some Rib.Ebgp
  | "ospf" -> Some Rib.Ospf
  | "rip" -> Some Rib.Rip
  | "ibgp" -> Some Rib.Ibgp
  | _ -> None

let entry_to_string e =
  let t = Time.to_sec_f e.at in
  match e.change with
  | Rib.Install (p, r) ->
      Printf.sprintf "%.6f install %s via %s metric %d proto %s" t
        (Prefix.to_string p)
        (Addr.to_string r.Rib.next_hop)
        r.Rib.metric
        (Rib.proto_name r.Rib.proto)
  | Rib.Withdraw p -> Printf.sprintf "%.6f withdraw %s" t (Prefix.to_string p)

let to_string entries =
  "# vini route trace v1\n"
  ^ String.concat "\n" (List.map entry_to_string entries)
  ^ "\n"

let parse_line line =
  match
    String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "")
  with
  | [] -> Ok None
  | hd :: _ when String.length hd > 0 && hd.[0] = '#' -> Ok None
  | [ t; "install"; p; "via"; nh; "metric"; m; "proto"; proto ] -> (
      match
        ( float_of_string_opt t,
          Prefix.of_string_opt p,
          Addr.of_string_opt nh,
          int_of_string_opt m,
          proto_of_string proto )
      with
      | Some t, Some p, Some nh, Some m, Some proto ->
          Ok
            (Some
               {
                 at = Time.of_sec_f t;
                 change =
                   Rib.Install (p, { Rib.next_hop = nh; metric = m; proto });
               })
      | _ -> Error (Printf.sprintf "bad install line %S" line))
  | [ t; "withdraw"; p ] -> (
      match (float_of_string_opt t, Prefix.of_string_opt p) with
      | Some t, Some p ->
          Ok (Some { at = Time.of_sec_f t; change = Rib.Withdraw p })
      | _ -> Error (Printf.sprintf "bad withdraw line %S" line))
  | _ -> Error (Printf.sprintf "unrecognised trace line %S" line)

let of_string text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go acc rest
        | Ok (Some e) -> go (e :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char '\n' text)

let play ~engine ~rib ?(proto = Rib.Static) ?(speed = 1.0) entries =
  if speed <= 0.0 then invalid_arg "Route_trace.play: speed must be positive";
  match entries with
  | [] -> ()
  | first :: _ ->
      let t0 = first.at in
      List.iter
        (fun e ->
          let offset =
            Time.of_sec_f (Time.to_sec_f (Time.sub e.at t0) /. speed)
          in
          ignore
            (Engine.after engine offset (fun () ->
                 match e.change with
                 | Rib.Install (p, r) ->
                     Rib.update rib ~proto p
                       (Some { r with Rib.proto })
                 | Rib.Withdraw p -> Rib.update rib ~proto p None)))
        entries
