module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Prefix = Vini_net.Prefix

type client_spec = {
  client_name : string;
  allowed : Prefix.t list;
  max_announce_per_sec : float;
  burst : int;
}

type client_state = {
  spec : client_spec;
  mutable tokens : float;
  mutable last_refill : Time.t;
  mutable rejected : int;
  mutable rate_limited : int;
}

type t = {
  engine : Engine.t;
  bgp : Bgp.t;
  vini_block : Prefix.t;
  clients : (string, client_state) Hashtbl.t;
}

let create ~engine ~asn ~rid ~addr ~vini_block =
  let config =
    Bgp.default_config ~asn ~rid ~next_hop_self:addr ~originate:[]
  in
  {
    engine;
    bgp = Bgp.create ~engine ~config ();
    vini_block;
    clients = Hashtbl.create 8;
  }

let attach_external t ~name ~send =
  Bgp.add_peer t.bgp ~name ~kind:`Ebgp ~send ()

let take_token t st =
  let now = Engine.now t.engine in
  let dt = Time.to_sec_f (Time.sub now st.last_refill) in
  st.tokens <-
    Float.min (float_of_int st.spec.burst)
      (st.tokens +. (dt *. st.spec.max_announce_per_sec));
  st.last_refill <- now;
  if st.tokens >= 1.0 then begin
    st.tokens <- st.tokens -. 1.0;
    true
  end
  else false

let attach_client t ~spec ~send =
  if Hashtbl.mem t.clients spec.client_name then
    invalid_arg "Bgp_mux.attach_client: duplicate client name";
  List.iter
    (fun p ->
      if not (Prefix.subsumes t.vini_block p) then
        invalid_arg
          "Bgp_mux.attach_client: allocation outside the VINI block")
    spec.allowed;
  let st =
    {
      spec;
      tokens = float_of_int spec.burst;
      last_refill = Engine.now t.engine;
      rejected = 0;
      rate_limited = 0;
    }
  in
  Hashtbl.replace t.clients spec.client_name st;
  let import prefix _path =
    let allowed = List.exists (fun a -> Prefix.subsumes a prefix) spec.allowed in
    if not allowed then begin
      st.rejected <- st.rejected + 1;
      false
    end
    else if not (take_token t st) then begin
      st.rate_limited <- st.rate_limited + 1;
      false
    end
    else true
  in
  Bgp.add_peer t.bgp ~name:spec.client_name ~kind:`Ibgp ~send ~import ()

let receive t ~peer msg = Bgp.receive t.bgp ~peer msg
let start t = Bgp.start t.bgp
let speaker t = t.bgp

let client_state t name =
  match Hashtbl.find_opt t.clients name with
  | Some st -> st
  | None -> invalid_arg "Bgp_mux: unknown client"

let rejected t ~client = (client_state t client).rejected
let rate_limited t ~client = (client_state t client).rate_limited
