type iface = {
  ifindex : int;
  ifname : string;
  local : Vini_net.Addr.t;
  remote : Vini_net.Addr.t;
  mutable cost : int;
  send : Vini_net.Packet.control -> size:int -> unit;
}

let make ~ifindex ~ifname ~local ~remote ~cost ~send =
  { ifindex; ifname; local; remote; cost; send }

let pp ppf t =
  Format.fprintf ppf "%s(#%d) %a -> %a cost %d" t.ifname t.ifindex
    Vini_net.Addr.pp t.local Vini_net.Addr.pp t.remote t.cost
