lib/routing/rchan.mli: Vini_net Vini_sim
