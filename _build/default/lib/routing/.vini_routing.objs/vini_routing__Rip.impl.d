lib/routing/rip.ml: Io List Map Rib Vini_net Vini_sim Vini_std
