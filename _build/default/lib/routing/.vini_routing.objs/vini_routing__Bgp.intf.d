lib/routing/bgp.mli: Rib Vini_net Vini_sim
