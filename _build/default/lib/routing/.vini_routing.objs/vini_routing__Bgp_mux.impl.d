lib/routing/bgp_mux.ml: Bgp Float Hashtbl List Vini_net Vini_sim
