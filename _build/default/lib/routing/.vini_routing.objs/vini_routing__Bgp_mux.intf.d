lib/routing/bgp_mux.mli: Bgp Vini_net Vini_sim
