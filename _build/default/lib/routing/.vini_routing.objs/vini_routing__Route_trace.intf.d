lib/routing/route_trace.mli: Rib Vini_sim
