lib/routing/ospf.mli: Io Rib Vini_net Vini_sim Vini_std
