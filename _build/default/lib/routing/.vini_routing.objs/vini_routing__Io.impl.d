lib/routing/io.ml: Format Vini_net
