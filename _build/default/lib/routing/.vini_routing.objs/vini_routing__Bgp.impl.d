lib/routing/bgp.ml: Lazy List Map Option Rchan Rib Vini_net Vini_sim
