lib/routing/rib.mli: Format Vini_net
