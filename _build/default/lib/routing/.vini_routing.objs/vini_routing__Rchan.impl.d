lib/routing/rchan.ml: Queue Vini_net Vini_sim
