lib/routing/rib.ml: Format List Map Option Vini_net
