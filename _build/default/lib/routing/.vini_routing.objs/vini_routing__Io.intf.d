lib/routing/io.mli: Format Vini_net
