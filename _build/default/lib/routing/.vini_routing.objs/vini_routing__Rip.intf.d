lib/routing/rip.mli: Io Rib Vini_net Vini_sim Vini_std
