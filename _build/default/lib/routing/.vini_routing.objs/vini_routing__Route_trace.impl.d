lib/routing/route_trace.ml: List Printf Rib String Vini_net Vini_sim
