lib/routing/ospf.ml: Hashtbl Io List Option Rib Vini_net Vini_sim Vini_std
