(** A Border Gateway Protocol speaker.

    Covers what VINI needs from BGP (§3.4, §6.1): eBGP/iBGP sessions with
    keepalive/hold-timer liveness over the {!Rchan} ARQ layer, path
    attributes (AS path, local preference, MED), loop rejection, the
    standard decision process, per-peer export policy (the hook the BGP
    multiplexer uses to confine an experiment to its own address block),
    MRAI-batched updates, and automatic session re-establishment. *)

type path = {
  origin_asn : int;
  as_path : int list;       (** nearest AS first *)
  next_hop : Vini_net.Addr.t;
  local_pref : int;
  med : int;
}

type update = {
  withdraw : Vini_net.Prefix.t list;
  announce : (Vini_net.Prefix.t * path) list;
}

type msg = Open of { asn : int; rid : int } | Keepalive | Update of update
type Vini_net.Packet.control += Msg of msg

val msg_size : msg -> int

type peer_kind = [ `Ebgp | `Ibgp ]
type peer_id = int

type config = {
  asn : int;
  rid : int;
  hold_time : Vini_sim.Time.t;     (** keepalives every third of this *)
  mrai : Vini_sim.Time.t;          (** update batching interval *)
  reconnect : Vini_sim.Time.t;
  next_hop_self : Vini_net.Addr.t;
  originate : Vini_net.Prefix.t list;
}

val default_config :
  asn:int -> rid:int -> next_hop_self:Vini_net.Addr.t ->
  originate:Vini_net.Prefix.t list -> config

type t

val create :
  engine:Vini_sim.Engine.t -> config:config -> ?rib:Rib.t -> unit -> t

val add_peer :
  t ->
  name:string ->
  kind:peer_kind ->
  send:(Vini_net.Packet.control -> size:int -> unit) ->
  ?export:(Vini_net.Prefix.t -> bool) ->
  ?import:(Vini_net.Prefix.t -> path -> bool) ->
  unit ->
  peer_id
(** Register a peer before {!start}.  [export] defaults to advertise-all;
    [import] (default accept-all) vets each received announcement — the
    BGP multiplexer uses it to confine experiments to their allocations. *)

val import_rejections : t -> peer_id -> int
(** Announcements a peer's import policy refused. *)

val start : t -> unit
val receive : t -> peer:peer_id -> Vini_net.Packet.control -> unit

val established : t -> peer_id -> bool
val loc_rib : t -> (Vini_net.Prefix.t * path) list
val best : t -> Vini_net.Prefix.t -> path option

val announce_prefix : t -> Vini_net.Prefix.t -> unit
(** Originate a prefix at runtime. *)

val withdraw_prefix : t -> Vini_net.Prefix.t -> unit

val updates_sent : t -> int
val updates_received : t -> int
val session_resets : t -> int

val compare_paths : path -> path -> int
(** The decision process as a comparison (for tests): negative when the
    first path is preferred. Peer tie-breaks excluded. *)
