(** Recording and replaying routing traces (§6.2).

    The paper wants VINI experiments drivable by "real world" routing
    measurements: record the stream of route changes a live run produces,
    then replay it later — into another experiment, at another time, or
    against a different data plane.

    A recorder taps a {!Rib}'s FEA stream and timestamps every change; the
    trace serialises to a line-oriented text format:

    {v
    # vini route trace v1
    12.345678 install 10.0.0.3/32 via 10.1.0.2 metric 20 proto ospf
    17.200000 withdraw 10.0.0.3/32
    v}

    Playback schedules the same changes, shifted to start "now", into any
    RIB (under a configurable protocol, default [Static] so replayed
    routes coexist with — and lose to — connected routes). *)

type entry = { at : Vini_sim.Time.t; change : Rib.change }

type recorder

val recorder : engine:Vini_sim.Engine.t -> unit -> recorder

val tap : recorder -> (Rib.change -> unit) -> Rib.change -> unit
(** [tap r fea] wraps a FEA callback: pass [tap r fea] where you would
    pass [fea] and every change is recorded before being forwarded. *)

val entries : recorder -> entry list
(** Chronological. *)

val to_string : entry list -> string
val of_string : string -> (entry list, string) result

val play :
  engine:Vini_sim.Engine.t ->
  rib:Rib.t ->
  ?proto:Rib.proto ->
  ?speed:float ->
  entry list ->
  unit
(** Schedule the trace's changes into [rib] starting now; [speed] > 1
    replays faster than recorded.  Withdraw entries withdraw the replayed
    protocol's candidate. *)
