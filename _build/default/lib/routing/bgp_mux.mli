(** The BGP multiplexer (§3.4 "distinct external routing adjacencies",
    §6.1).

    External networks will not open one session per experiment, for
    stability and overhead reasons; instead VINI terminates a single eBGP
    adjacency per neighbouring domain and multiplexes it.  Each experiment
    peers with the mux, which

    - confines the experiment to its allocated sub-block of VINI's address
      space (announcements outside it are rejected and counted),
    - rate-limits the announcements an experiment may push towards the
      external world (a token bucket), and
    - redistributes externally learned routes to every experiment.

    Experiments cannot see or disturb each other's announcements (the
    mux's iBGP relay rules forbid client-to-client propagation). *)

type client_spec = {
  client_name : string;
  allowed : Vini_net.Prefix.t list;
  (** sub-blocks of the VINI allocation this experiment may announce *)
  max_announce_per_sec : float;
  burst : int;
}

type t

val create :
  engine:Vini_sim.Engine.t ->
  asn:int ->
  rid:int ->
  addr:Vini_net.Addr.t ->
  vini_block:Vini_net.Prefix.t ->
  t

val attach_external :
  t -> name:string -> send:(Vini_net.Packet.control -> size:int -> unit) ->
  Bgp.peer_id
(** The shared session to a router in a neighbouring domain. *)

val attach_client :
  t -> spec:client_spec -> send:(Vini_net.Packet.control -> size:int -> unit) ->
  Bgp.peer_id
(** A session to one experiment's BGP speaker. *)

val receive : t -> peer:Bgp.peer_id -> Vini_net.Packet.control -> unit
val start : t -> unit

val speaker : t -> Bgp.t
(** The underlying BGP instance (inspection). *)

val rejected : t -> client:string -> int
(** Announcements refused for being outside the client's allocation. *)

val rate_limited : t -> client:string -> int
(** Announcements refused by the rate limiter. *)
