(** The interface a routing process sees.

    XORP in IIAS runs above UML network devices that map 1:1 onto UDP
    tunnels (§4.2.2); what the protocol observes is: a point-to-point
    interface with a local and a remote address, a cost, and a way to send
    a control message out of it.  The overlay layer supplies [send] (it
    injects the message into the local Click data plane) and calls the
    protocol back on receipt. *)

type iface = {
  ifindex : int;
  ifname : string;
  local : Vini_net.Addr.t;    (** our end of the point-to-point /30 *)
  remote : Vini_net.Addr.t;   (** neighbour's end *)
  mutable cost : int;
  (** IGP metric of the attached virtual link; mutable so an experimenter
      can retarget traffic by reconfiguration (the §7 planned-maintenance
      usage) — the owning protocol must re-originate afterwards. *)
  send : Vini_net.Packet.control -> size:int -> unit;
}

val make :
  ifindex:int ->
  ifname:string ->
  local:Vini_net.Addr.t ->
  remote:Vini_net.Addr.t ->
  cost:int ->
  send:(Vini_net.Packet.control -> size:int -> unit) ->
  iface

val pp : Format.formatter -> iface -> unit
