module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet

type Packet.control +=
  | Data of { seq : int; payload : Packet.control; psize : int }
  | Ack of int

type t = {
  engine : Engine.t;
  send : Packet.control -> size:int -> unit;
  deliver : Packet.control -> unit;
  rto : Time.t;
  queue : (Packet.control * int) Queue.t;
  mutable next_seq : int;          (* next seq to assign *)
  mutable unacked : (int * Packet.control * int) option;
  mutable timer : Engine.handle option;
  mutable expected : int;          (* next seq expected from peer *)
  mutable retransmissions : int;
  mutable stopped : bool;
}

let create ~engine ~send ~deliver ?(rto = Time.ms 800) () =
  {
    engine;
    send;
    deliver;
    rto;
    queue = Queue.create ();
    next_seq = 0;
    unacked = None;
    timer = None;
    expected = 0;
    retransmissions = 0;
    stopped = false;
  }

let frame_size psize = psize + 12

let rec transmit t =
  match t.unacked with
  | Some (seq, payload, psize) ->
      t.send (Data { seq; payload; psize }) ~size:(frame_size psize);
      t.timer <-
        Some
          (Engine.after t.engine t.rto (fun () ->
               if not t.stopped && t.unacked <> None then begin
                 t.retransmissions <- t.retransmissions + 1;
                 transmit t
               end))
  | None -> ()

let pump t =
  if t.unacked = None && not (Queue.is_empty t.queue) then begin
    let payload, psize = Queue.pop t.queue in
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    t.unacked <- Some (seq, payload, psize);
    transmit t
  end

let post t payload ~size =
  if not t.stopped then begin
    Queue.push (payload, size) t.queue;
    pump t
  end

let receive t msg =
  match msg with
  | Data { seq; payload; _ } ->
      (* Always ack what we have seen; deliver only in-order novelty. *)
      if seq = t.expected then begin
        t.expected <- t.expected + 1;
        t.send (Ack seq) ~size:12;
        t.deliver payload
      end
      else t.send (Ack (min seq (t.expected - 1))) ~size:12;
      true
  | Ack seq ->
      (match t.unacked with
      | Some (s, _, _) when seq >= s ->
          t.unacked <- None;
          (match t.timer with Some h -> Engine.cancel h | None -> ());
          t.timer <- None;
          pump t
      | Some _ | None -> ());
      true
  | _ -> false

let stop t =
  t.stopped <- true;
  Queue.clear t.queue;
  t.unacked <- None;
  (match t.timer with Some h -> Engine.cancel h | None -> ());
  t.timer <- None

let reset t =
  stop t;
  t.stopped <- false;
  t.next_seq <- 0;
  t.expected <- 0

let retransmissions t = t.retransmissions
let in_flight t = (if t.unacked = None then 0 else 1) + Queue.length t.queue
