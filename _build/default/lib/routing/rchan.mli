(** Stop-and-wait reliable, ordered delivery of control messages.

    Real BGP rides on TCP; our BGP sessions ride on this little ARQ layer
    instead, so they survive the packet loss that overlay links and busy
    Click processes inflict, while still failing (hold-timer expiry) when
    the path is truly dead.  Each side numbers messages, the receiver acks
    and delivers in order, the sender retransmits on timeout. *)

type Vini_net.Packet.control +=
  | Data of { seq : int; payload : Vini_net.Packet.control; psize : int }
  | Ack of int

type t

val create :
  engine:Vini_sim.Engine.t ->
  send:(Vini_net.Packet.control -> size:int -> unit) ->
  deliver:(Vini_net.Packet.control -> unit) ->
  ?rto:Vini_sim.Time.t ->
  unit ->
  t

val post : t -> Vini_net.Packet.control -> size:int -> unit
(** Queue a message for reliable transmission. *)

val receive : t -> Vini_net.Packet.control -> bool
(** Feed an incoming control message; [true] when it was an ARQ frame
    (consumed), [false] otherwise (not ours — caller should handle). *)

val stop : t -> unit
(** Cancel retransmissions and drop queued messages (session teardown). *)

val reset : t -> unit
(** [stop] plus sequence-number reset, for a fresh session over the same
    channel. *)

val retransmissions : t -> int
val in_flight : t -> int
