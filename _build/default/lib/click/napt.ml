module Packet = Vini_net.Packet
module Addr = Vini_net.Addr

type l4 = Proto_udp | Proto_tcp | Proto_icmp

type flow_key = {
  proto : l4;
  inner_addr : Addr.t;
  inner_port : int;   (* ICMP: identifier *)
  remote_addr : Addr.t;
  remote_port : int;  (* ICMP: 0 *)
}

type t = {
  public_addr : Addr.t;
  out_map : (flow_key, int) Hashtbl.t;        (* flow -> external port/id *)
  in_map : (l4 * int, flow_key) Hashtbl.t;    (* external port/id -> flow *)
  mutable next_port : int;
}

let create ~public_addr ?(port_base = 61000) () =
  {
    public_addr;
    out_map = Hashtbl.create 64;
    in_map = Hashtbl.create 64;
    next_port = port_base;
  }

let alloc t key =
  match Hashtbl.find_opt t.out_map key with
  | Some p -> p
  | None ->
      let p = t.next_port in
      t.next_port <- t.next_port + 1;
      Hashtbl.replace t.out_map key p;
      Hashtbl.replace t.in_map (key.proto, p) key;
      p

let translate_out t (pkt : Packet.t) =
  match pkt.Packet.proto with
  | Packet.Udp u ->
      let key =
        {
          proto = Proto_udp;
          inner_addr = pkt.Packet.src;
          inner_port = u.Packet.usport;
          remote_addr = pkt.Packet.dst;
          remote_port = u.Packet.udport;
        }
      in
      let ext = alloc t key in
      Some
        (Packet.with_src
           (Packet.with_udp_ports pkt ~sport:ext ~dport:u.Packet.udport)
           t.public_addr)
  | Packet.Tcp seg ->
      let key =
        {
          proto = Proto_tcp;
          inner_addr = pkt.Packet.src;
          inner_port = seg.Packet.sport;
          remote_addr = pkt.Packet.dst;
          remote_port = seg.Packet.dport;
        }
      in
      let ext = alloc t key in
      Some
        (Packet.with_src
           (Packet.with_tcp_ports pkt ~sport:ext ~dport:seg.Packet.dport)
           t.public_addr)
  | Packet.Icmp (Packet.Echo_request e) ->
      let key =
        {
          proto = Proto_icmp;
          inner_addr = pkt.Packet.src;
          inner_port = e.Packet.ident;
          remote_addr = pkt.Packet.dst;
          remote_port = 0;
        }
      in
      let ext = alloc t key in
      let icmp = Packet.Echo_request { e with Packet.ident = ext } in
      Some
        (Packet.icmp ~ttl:pkt.Packet.ttl ~src:t.public_addr ~dst:pkt.Packet.dst
           icmp)
  | Packet.Icmp _ -> None

let translate_in t (pkt : Packet.t) =
  if not (Addr.equal pkt.Packet.dst t.public_addr) then None
  else
    match pkt.Packet.proto with
    | Packet.Udp u -> (
        match Hashtbl.find_opt t.in_map (Proto_udp, u.Packet.udport) with
        | Some key ->
            Some
              (Packet.with_dst
                 (Packet.with_udp_ports pkt ~sport:u.Packet.usport
                    ~dport:key.inner_port)
                 key.inner_addr)
        | None -> None)
    | Packet.Tcp seg -> (
        match Hashtbl.find_opt t.in_map (Proto_tcp, seg.Packet.dport) with
        | Some key ->
            Some
              (Packet.with_dst
                 (Packet.with_tcp_ports pkt ~sport:seg.Packet.sport
                    ~dport:key.inner_port)
                 key.inner_addr)
        | None -> None)
    | Packet.Icmp (Packet.Echo_reply e) -> (
        match Hashtbl.find_opt t.in_map (Proto_icmp, e.Packet.ident) with
        | Some key ->
            let icmp = Packet.Echo_reply { e with Packet.ident = key.inner_port } in
            Some
              (Packet.icmp ~ttl:pkt.Packet.ttl ~src:pkt.Packet.src
                 ~dst:key.inner_addr icmp)
        | None -> None)
    | Packet.Icmp _ -> None

let mappings t = Hashtbl.length t.out_map
let public_addr t = t.public_addr
