(** Longest-prefix-match forwarding table (a binary trie).

    The FIB each Click instance holds (Figure 1): XORP populates it with
    prefix → next-hop entries; the data plane looks packets up per
    destination address.  Values are arbitrary, so the same structure
    serves the IIAS overlay FIB (next hop = neighbour virtual address),
    the encapsulation table, and test fixtures. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Vini_net.Prefix.t -> 'a -> unit
(** Insert or replace the entry for a prefix. *)

val remove : 'a t -> Vini_net.Prefix.t -> unit
(** No-op when absent. *)

val lookup : 'a t -> Vini_net.Addr.t -> 'a option
(** Longest matching prefix's value. *)

val lookup_prefix : 'a t -> Vini_net.Addr.t -> (Vini_net.Prefix.t * 'a) option
(** Also reports which prefix matched. *)

val find_exact : 'a t -> Vini_net.Prefix.t -> 'a option
val entries : 'a t -> (Vini_net.Prefix.t * 'a) list
(** Sorted by (network, length). *)

val length : 'a t -> int
val clear : 'a t -> unit
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
