(** Network Address and Port Translation (the IIAS egress, §4.2.3).

    Outbound packets leaving the overlay for the real Internet get their
    source rewritten to the egress node's public address and a fresh local
    port; the mapping is remembered so return traffic — which external
    hosts address to the egress node — is rewritten back and re-enters the
    overlay.  UDP, TCP, and ICMP echo (keyed by identifier) are supported,
    which covers everything the experiments send. *)

type t

val create : public_addr:Vini_net.Addr.t -> ?port_base:int -> unit -> t

val translate_out : t -> Vini_net.Packet.t -> Vini_net.Packet.t option
(** Rewrite an overlay packet for the outside; [None] for untranslatable
    packets (e.g. ICMP errors). *)

val translate_in : t -> Vini_net.Packet.t -> Vini_net.Packet.t option
(** Match return traffic against the table; [None] when no mapping
    exists (the packet is not ours). *)

val mappings : t -> int
val public_addr : t -> Vini_net.Addr.t
