(** Token-bucket traffic shaper element.

    The mechanism §6.2 proposes for letting experimenters set virtual-link
    capacities inside Click.  Packets exceeding the configured rate are
    queued (bounded, drop-tail) and released on schedule by the simulation
    engine. *)

type t

val create :
  engine:Vini_sim.Engine.t ->
  rate_bps:float ->
  ?burst_bytes:int ->
  ?queue_bytes:int ->
  out:Element.t ->
  string ->
  t

val element : t -> Element.t
(** The push port to wire upstream. *)

val set_rate : t -> float -> unit
val drops : t -> int
val queued : t -> int
(** Packets currently waiting for tokens. *)
