type mode = Pass | Fail | Lossy of float

type t = {
  rng : Vini_std.Rng.t;
  out : Element.t;
  mutable mode : mode;
  mutable dropped : int;
  mutable element : Element.t option;
}

let create ~rng ~out name =
  let t = { rng; out; mode = Pass; dropped = 0; element = None } in
  let el =
    Element.make name (fun pkt ->
        match t.mode with
        | Pass -> Element.push t.out pkt
        | Fail -> t.dropped <- t.dropped + 1
        | Lossy p ->
            if Vini_std.Rng.float t.rng 1.0 < p then t.dropped <- t.dropped + 1
            else Element.push t.out pkt)
  in
  t.element <- Some el;
  t

let element t = Option.get t.element

let set_mode t mode =
  (match mode with
  | Lossy p when p < 0.0 || p > 1.0 -> invalid_arg "Faulty.set_mode: loss rate"
  | Lossy _ | Pass | Fail -> ());
  t.mode <- mode

let mode t = t.mode
let dropped t = t.dropped
