lib/click/fib.ml: Format List Option Vini_net
