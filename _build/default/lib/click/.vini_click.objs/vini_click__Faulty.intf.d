lib/click/faulty.mli: Element Vini_std
