lib/click/faulty.ml: Element Option Vini_std
