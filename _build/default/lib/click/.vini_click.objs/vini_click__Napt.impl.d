lib/click/napt.ml: Hashtbl Vini_net
