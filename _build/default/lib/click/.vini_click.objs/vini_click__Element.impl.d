lib/click/element.ml: Lazy List Vini_net
