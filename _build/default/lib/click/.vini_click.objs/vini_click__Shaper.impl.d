lib/click/shaper.ml: Element Float Option Vini_net Vini_sim Vini_std
