lib/click/element.mli: Vini_net
