lib/click/napt.mli: Vini_net
