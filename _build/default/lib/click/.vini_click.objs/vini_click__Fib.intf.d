lib/click/fib.mli: Format Vini_net
