lib/click/shaper.mli: Element Vini_sim
