(** A flat, key-based addressing scheme on top of IIAS — the §4.2.1 claim
    made concrete:

    {i "Though IIAS currently performs IPv4 forwarding, it can also support
    new forwarding paradigms beyond IP ... One could implement a new
    addressing scheme in IIAS, for instance based on DHTs, simply by
    writing new forwarding and encapsulation table elements."}

    Keys live in a flat space carved out of a reserved address block
    (default 10.224.0.0/11, 21 bits of key).  Consistent hashing assigns
    each virtual node an arc of the key space; the arc is decomposed into
    CIDR prefixes and advertised through the experiment's ordinary routing
    protocol, so key-addressed packets are forwarded by the unmodified
    data plane and terminate at the key's owner.

    A toy distributed key-value service rides on top: [put]/[get] address
    requests to [addr_of_key] and the owning node answers — one system
    running in VINI providing a service for another (§2). *)

type t

val create : Iias.t -> ?block:Vini_net.Prefix.t -> unit -> t
(** Carve the key space and advertise each node's arc.  Call after
    [Iias.create] but {e before} [Iias.start].
    @raise Invalid_argument if the block is narrower than /16 or the
    overlay has more nodes than arcs can distinguish. *)

val key_bits : t -> int
val key_of_name : t -> string -> int
(** Hash an application name into the key space (deterministic). *)

val addr_of_key : t -> int -> Vini_net.Addr.t
(** The IPv4 address a key maps to (inside the block).
    @raise Invalid_argument when the key is outside the space. *)

val owner_of_key : t -> int -> int
(** Which virtual node's arc contains the key. *)

val arcs : t -> (int * Vini_net.Prefix.t list) list
(** (vnode, advertised prefixes) — the "encapsulation table" of the new
    scheme, for inspection and tests. *)

(** {2 The key-value service} *)

val put :
  t -> from:int -> name:string -> size:int -> on_ack:(stored_at:int -> unit) ->
  unit
(** Store [name] (a blob of [size] bytes) at its key's owner, from virtual
    node [from]; [on_ack] fires when the owner confirms. *)

val get :
  t -> from:int -> name:string ->
  on_result:(found:bool -> size:int -> owner:int -> unit) -> unit

val stored_names : t -> int -> string list
(** What a given node's store holds (tests). *)

(** {2 Range-to-CIDR decomposition (exposed for property tests)} *)

val cover_range : bits:int -> lo:int -> hi:int -> (int * int) list
(** Cover [\[lo, hi)] within a [bits]-wide space by maximal aligned blocks,
    returned as (start, prefix-extra-bits) pairs; blocks are disjoint and
    their union is exactly the range. *)
