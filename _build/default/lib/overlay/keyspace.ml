module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Prefix = Vini_net.Prefix
module Ipstack = Vini_phys.Ipstack

type kv_msg =
  | Put of { name : string; size : int; reply_to : Addr.t }
  | Put_ack of { name : string; stored_at : int }
  | Get of { name : string; reply_to : Addr.t }
  | Get_resp of { name : string; found : bool; size : int; owner : int }

type Packet.control += Kv of kv_msg

let kv_size = function
  | Put { name; _ } -> 24 + String.length name
  | Put_ack { name; _ } -> 16 + String.length name
  | Get { name; _ } -> 16 + String.length name
  | Get_resp { name; _ } -> 24 + String.length name

type t = {
  iias : Iias.t;
  block : Prefix.t;
  bits : int;
  (* Sorted ring positions with their owning vnode. *)
  ring : (int * int) array;     (* (position, vnode) sorted by position *)
  node_arcs : (int * Prefix.t list) list;
  stores : (int, (string, int) Hashtbl.t) Hashtbl.t;
  mutable pending_acks : (string * (stored_at:int -> unit)) list;
  mutable pending_gets :
    (string * (found:bool -> size:int -> owner:int -> unit)) list;
}

(* Deterministic string hash into [0, 2^bits). *)
let hash_string ~bits s =
  (* FNV-1a over 63-bit ints, with an avalanche finaliser so that keys of
     similar names do not cluster in the truncated window. *)
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  let x = !h in
  let x = x lxor (x lsr 33) in
  let x = x * 0x27D4EB2F165667C5 in
  let x = x lxor (x lsr 29) in
  (x lsr 3) land ((1 lsl bits) - 1)

(* Cover [lo, hi) by maximal aligned power-of-two blocks. *)
let cover_range ~bits ~lo ~hi =
  if lo < 0 || hi > 1 lsl bits || lo > hi then
    invalid_arg "Keyspace.cover_range: bad range";
  let rec go lo acc =
    if lo >= hi then List.rev acc
    else begin
      (* Largest aligned block starting at lo that fits in [lo, hi). *)
      let align = if lo = 0 then bits else min bits (trailing_zeros lo) in
      let rec fit size_bits =
        if size_bits >= 0 && lo + (1 lsl size_bits) <= hi then size_bits
        else fit (size_bits - 1)
      in
      let size_bits = fit align in
      go (lo + (1 lsl size_bits)) ((lo, bits - size_bits) :: acc)
    end
  and trailing_zeros n =
    let rec count n acc = if n land 1 = 1 then acc else count (n lsr 1) (acc + 1) in
    if n = 0 then 63 else count n 0
  in
  go lo []

let rec create iias ?(block = Prefix.of_string "10.224.0.0/11") () =
  let bits = 32 - Prefix.length block in
  if bits < 16 then invalid_arg "Keyspace.create: block narrower than /16";
  let n = Iias.vnode_count iias in
  if n >= 1 lsl (bits - 2) then
    invalid_arg "Keyspace.create: too many nodes for the key space";
  (* Ring positions: several virtual points per node (classic consistent
     hashing) so arcs are reasonably balanced; collisions probe forward. *)
  let replicas = 8 in
  let used = Hashtbl.create 64 in
  let positions =
    List.concat
      (List.init n (fun v ->
           List.init replicas (fun r ->
               let seedname =
                 Printf.sprintf "%s#%d" (Iias.vname (Iias.vnode iias v)) r
               in
               let rec place h =
                 if Hashtbl.mem used h then
                   place ((h + 1) land ((1 lsl bits) - 1))
                 else begin
                   Hashtbl.replace used h ();
                   h
                 end
               in
               (place (hash_string ~bits seedname), v))))
  in
  let ring = Array.of_list positions in
  Array.sort compare ring;
  (* Ring point i owns [pos_i, pos_{i+1}); the last wraps to the first. *)
  let space = 1 lsl bits in
  let arcs_of v =
    let m = Array.length ring in
    let acc = ref [] in
    for i = 0 to m - 1 do
      let pos, owner = ring.(i) in
      if owner = v then begin
        let next_pos = if i = m - 1 then space else fst ring.(i + 1) in
        if next_pos > pos then acc := (pos, next_pos) :: !acc
      end
    done;
    (* Wrap segment [last, space) belongs to the last point's owner, which
       the loop already covers; the leading [0, first) belongs to the last
       ring point's owner. *)
    let last_owner = snd ring.(m - 1) in
    let first_pos = fst ring.(0) in
    if v = last_owner && first_pos > 0 then acc := (0, first_pos) :: !acc;
    List.rev !acc
  in
  let prefix_of (start, extra_bits) =
    Prefix.make
      (Addr.add (Prefix.network block) start)
      (Prefix.length block + extra_bits)
  in
  let node_arcs =
    List.init n (fun v ->
        let prefixes =
          List.concat_map
            (fun (lo, hi) ->
              List.map prefix_of (cover_range ~bits ~lo ~hi))
            (arcs_of v)
        in
        List.iter (fun p -> Iias.advertise_prefix iias v p) prefixes;
        (v, prefixes))
  in
  let t =
    {
      iias;
      block;
      bits;
      ring;
      node_arcs;
      stores = Hashtbl.create 16;
      pending_acks = [];
      pending_gets = [];
    }
  in
  (* Each node serves the key-value protocol from its control hook. *)
  for v = 0 to n - 1 do
    Hashtbl.replace t.stores v (Hashtbl.create 16);
    Iias.on_control (Iias.vnode iias v) (fun ~src:_ ~ifindex:_ msg ->
        match msg with Kv m -> handle t v m | _ -> ())
  done;
  t

and handle t v msg =
  let vn = Iias.vnode t.iias v in
  let send ~dst m =
    Ipstack.send (Iias.tap vn)
      (Packet.udp ~src:(Iias.tap_addr vn) ~dst ~sport:4400 ~dport:4400
         (Packet.Control { size = kv_size m; msg = Kv m }))
  in
  match msg with
  | Put { name; size; reply_to } ->
      Hashtbl.replace (Hashtbl.find t.stores v) name size;
      send ~dst:reply_to (Put_ack { name; stored_at = v })
  | Get { name; reply_to } ->
      let store = Hashtbl.find t.stores v in
      let found, size =
        match Hashtbl.find_opt store name with
        | Some s -> (true, s)
        | None -> (false, 0)
      in
      send ~dst:reply_to (Get_resp { name; found; size; owner = v })
  | Put_ack { name; stored_at } ->
      let mine, rest =
        List.partition (fun (n, _) -> n = name) t.pending_acks
      in
      t.pending_acks <- rest;
      List.iter (fun (_, k) -> k ~stored_at) mine
  | Get_resp { name; found; size; owner } ->
      let mine, rest =
        List.partition (fun (n, _) -> n = name) t.pending_gets
      in
      t.pending_gets <- rest;
      List.iter (fun (_, k) -> k ~found ~size ~owner) mine

let key_bits t = t.bits
let key_of_name t name = hash_string ~bits:t.bits name

let addr_of_key t key =
  if key < 0 || key >= 1 lsl t.bits then
    invalid_arg "Keyspace.addr_of_key: key outside the space";
  Addr.add (Prefix.network t.block) key

let owner_of_key t key =
  let n = Array.length t.ring in
  (* Largest ring position <= key, wrapping below the smallest. *)
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let pos, owner = t.ring.(mid) in
      if pos <= key then search (mid + 1) hi (Some owner)
      else search lo (mid - 1) best
  in
  match search 0 (n - 1) None with
  | Some owner -> owner
  | None -> snd t.ring.(n - 1) (* below the first position: wrap *)

let arcs t = t.node_arcs

let send_kv t ~from msg =
  let vn = Iias.vnode t.iias from in
  let name =
    match msg with
    | Put { name; _ } | Get { name; _ } | Put_ack { name; _ }
    | Get_resp { name; _ } ->
        name
  in
  let dst = addr_of_key t (key_of_name t name) in
  Ipstack.send (Iias.tap vn)
    (Packet.udp ~src:(Iias.tap_addr vn) ~dst ~sport:4400 ~dport:4400
       (Packet.Control { size = kv_size msg; msg = Kv msg }))

let put t ~from ~name ~size ~on_ack =
  t.pending_acks <- (name, on_ack) :: t.pending_acks;
  send_kv t ~from
    (Put { name; size; reply_to = Iias.tap_addr (Iias.vnode t.iias from) })

let get t ~from ~name ~on_result =
  t.pending_gets <- (name, on_result) :: t.pending_gets;
  send_kv t ~from
    (Get { name; reply_to = Iias.tap_addr (Iias.vnode t.iias from) })

let stored_names t v =
  Hashtbl.fold (fun name _ acc -> name :: acc) (Hashtbl.find t.stores v) []
  |> List.sort compare
