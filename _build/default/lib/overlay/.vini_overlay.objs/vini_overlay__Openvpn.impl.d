lib/overlay/openvpn.ml: Lazy Vini_net Vini_phys
