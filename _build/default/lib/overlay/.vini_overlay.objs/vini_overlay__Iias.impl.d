lib/overlay/iias.ml: Array Hashtbl List Option Printf Vini_click Vini_net Vini_phys Vini_routing Vini_sim Vini_std Vini_topo
