lib/overlay/iias.mli: Vini_net Vini_phys Vini_routing Vini_sim Vini_topo
