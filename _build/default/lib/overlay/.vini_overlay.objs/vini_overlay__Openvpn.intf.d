lib/overlay/openvpn.mli: Vini_net Vini_phys
