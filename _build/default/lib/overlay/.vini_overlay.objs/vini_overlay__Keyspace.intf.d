lib/overlay/keyspace.mli: Iias Vini_net
