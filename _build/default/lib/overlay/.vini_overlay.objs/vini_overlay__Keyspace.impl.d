lib/overlay/keyspace.ml: Array Char Hashtbl Iias List Printf String Vini_net Vini_phys
