type iface_cfg = {
  ifname : string;
  peer : string;
  bandwidth_kbps : int;
  delay_us : int;
  ospf_cost : int;
}

type router_cfg = {
  hostname : string;
  ospf : bool;
  hello_interval_s : int option;
  dead_interval_s : int option;
  ifaces : iface_cfg list;
}

(* A pending interface section being accumulated. *)
type building_iface = {
  b_ifname : string;
  mutable b_peer : string option;
  mutable b_bw : int;
  mutable b_delay : int;
  mutable b_cost : int option;
}

type section = Top | In_ospf | In_iface of building_iface

type builder = {
  mutable hostname : string option;
  mutable ospf : bool;
  mutable hello : int option;
  mutable dead : int option;
  mutable done_ifaces : iface_cfg list;
  mutable section : section;
}

let fresh_builder () =
  {
    hostname = None;
    ospf = false;
    hello = None;
    dead = None;
    done_ifaces = [];
    section = Top;
  }

let strip_comment line =
  let cut c s =
    match String.index_opt s c with None -> s | Some i -> String.sub s 0 i
  in
  cut '!' (cut '#' line)

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.filter (fun s -> s <> "")

let close_iface b =
  match b.section with
  | In_iface bi -> (
      b.section <- Top;
      match bi.b_peer with
      | None ->
          Error
            (Printf.sprintf "interface %s has no \"description to <peer>\""
               bi.b_ifname)
      | Some peer ->
          let cost =
            (* Cisco-style default: cost from bandwidth when unset. *)
            match bi.b_cost with
            | Some c -> c
            | None -> max 1 (100_000_000 / max 1 (bi.b_bw * 1000))
          in
          b.done_ifaces <-
            {
              ifname = bi.b_ifname;
              peer;
              bandwidth_kbps = bi.b_bw;
              delay_us = bi.b_delay;
              ospf_cost = cost;
            }
            :: b.done_ifaces;
          Ok ())
  | Top | In_ospf ->
      b.section <- Top;
      Ok ()

let int_arg name = function
  | [ v ] -> (
      match int_of_string_opt v with
      | Some i when i >= 0 -> Ok i
      | Some _ | None -> Error (Printf.sprintf "bad %s value %S" name v))
  | _ -> Error (Printf.sprintf "%s expects one argument" name)

let feed b line =
  let ( let* ) = Result.bind in
  match tokens line with
  | [] -> Ok ()
  | "hostname" :: rest -> (
      let* () = close_iface b in
      match rest with
      | [ h ] ->
          if b.hostname = None then begin
            b.hostname <- Some h;
            Ok ()
          end
          else Error "duplicate hostname line"
      | _ -> Error "hostname expects one argument")
  | "router" :: "ospf" :: _ ->
      let* () = close_iface b in
      b.ospf <- true;
      b.section <- In_ospf;
      Ok ()
  | "interface" :: [ ifname ] ->
      let* () = close_iface b in
      b.section <-
        In_iface
          { b_ifname = ifname; b_peer = None; b_bw = 1_000_000; b_delay = 100;
            b_cost = None };
      Ok ()
  | "hello-interval" :: rest when b.section = In_ospf ->
      let* v = int_arg "hello-interval" rest in
      b.hello <- Some v;
      Ok ()
  | "dead-interval" :: rest when b.section = In_ospf ->
      let* v = int_arg "dead-interval" rest in
      b.dead <- Some v;
      Ok ()
  | "description" :: "to" :: [ peer ] -> (
      match b.section with
      | In_iface bi ->
          bi.b_peer <- Some peer;
          Ok ()
      | Top | In_ospf -> Error "description outside interface section")
  | "bandwidth" :: rest -> (
      match b.section with
      | In_iface bi ->
          let* v = int_arg "bandwidth" rest in
          bi.b_bw <- v;
          Ok ()
      | Top | In_ospf -> Error "bandwidth outside interface section")
  | "delay" :: rest -> (
      match b.section with
      | In_iface bi ->
          let* v = int_arg "delay" rest in
          bi.b_delay <- v;
          Ok ()
      | Top | In_ospf -> Error "delay outside interface section")
  | "ip" :: "ospf" :: "cost" :: rest -> (
      match b.section with
      | In_iface bi ->
          let* v = int_arg "ip ospf cost" rest in
          bi.b_cost <- Some v;
          Ok ()
      | Top | In_ospf -> Error "ip ospf cost outside interface section")
  | tok :: _ -> Error (Printf.sprintf "unrecognised directive %S" tok)

let finish b =
  match close_iface b with
  | Error e -> Error e
  | Ok () -> (
      match b.hostname with
      | None -> Error "missing hostname"
      | Some hostname ->
          Ok
            {
              hostname;
              ospf = b.ospf;
              hello_interval_s = b.hello;
              dead_interval_s = b.dead;
              ifaces = List.rev b.done_ifaces;
            })

let parse text =
  let b = fresh_builder () in
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> finish b
    | line :: rest -> (
        match feed b line with
        | Ok () -> go (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 lines

let parse_many text =
  (* Split on "hostname" lines, keeping each chunk self-contained. *)
  let lines = String.split_on_char '\n' text in
  let chunks = ref [] and current = ref [] in
  List.iter
    (fun line ->
      let is_hostname =
        match tokens line with "hostname" :: _ -> true | _ -> false
      in
      if is_hostname && !current <> [] then begin
        chunks := List.rev !current :: !chunks;
        current := [ line ]
      end
      else current := line :: !current)
    lines;
  if !current <> [] then chunks := List.rev !current :: !chunks;
  let chunks = List.rev !chunks in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest -> (
        let text = String.concat "\n" chunk in
        if String.trim text = "" then go acc rest
        else
          match parse text with
          | Ok cfg -> go (cfg :: acc) rest
          | Error e -> Error e)
  in
  go [] chunks

let pp ppf (cfg : router_cfg) =
  Format.fprintf ppf "router %s (ospf %b)@." cfg.hostname cfg.ospf;
  List.iter
    (fun i ->
      Format.fprintf ppf "  %s -> %s bw %d kb/s delay %d us cost %d@."
        i.ifname i.peer i.bandwidth_kbps i.delay_us i.ospf_cost)
    cfg.ifaces
