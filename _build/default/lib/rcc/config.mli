(** Parser for a compact IOS-style router configuration dialect.

    The paper drives its Abilene mirror from the real routers'
    configuration state, parsed with rcc (§4, §6.2).  This module parses
    the equivalent information from text of the form:

    {v
    hostname Seattle
    router ospf 1
      hello-interval 5
      dead-interval 10
    interface ge-0/0/0
      description to Sunnyvale
      bandwidth 10000000
      delay 8000
      ip ospf cost 800
    !
    v}

    [bandwidth] is in kb/s, [delay] in microseconds (one way).  Comments
    start with [!] or [#]. *)

type iface_cfg = {
  ifname : string;
  peer : string;          (** hostname from "description to <peer>" *)
  bandwidth_kbps : int;
  delay_us : int;
  ospf_cost : int;
}

type router_cfg = {
  hostname : string;
  ospf : bool;
  hello_interval_s : int option;
  dead_interval_s : int option;
  ifaces : iface_cfg list;
}

val parse : string -> (router_cfg, string) result
(** Parse one router's configuration. *)

val parse_many : string -> (router_cfg list, string) result
(** Parse a file with several routers separated by [hostname] lines. *)

val pp : Format.formatter -> router_cfg -> unit
