(* The 2006 Abilene backbone, as router configurations: the dataset the
   rcc pipeline parses to drive the Section 5.2 mirror experiment. *)

let text = {config|hostname Seattle
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Sunnyvale
  bandwidth 10000000
  delay 8000
  ip ospf cost 800
!
interface ge-1/0/0
  description to Denver
  bandwidth 10000000
  delay 14500
  ip ospf cost 1450
!

hostname Sunnyvale
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Seattle
  bandwidth 10000000
  delay 8000
  ip ospf cost 800
!
interface ge-1/0/0
  description to Los-Angeles
  bandwidth 10000000
  delay 5000
  ip ospf cost 500
!
interface ge-2/0/0
  description to Denver
  bandwidth 10000000
  delay 12000
  ip ospf cost 1200
!

hostname Los-Angeles
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Sunnyvale
  bandwidth 10000000
  delay 5000
  ip ospf cost 500
!
interface ge-1/0/0
  description to Houston
  bandwidth 10000000
  delay 15500
  ip ospf cost 1550
!

hostname Denver
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Seattle
  bandwidth 10000000
  delay 14500
  ip ospf cost 1450
!
interface ge-1/0/0
  description to Sunnyvale
  bandwidth 10000000
  delay 12000
  ip ospf cost 1200
!
interface ge-2/0/0
  description to Kansas-City
  bandwidth 10000000
  delay 5500
  ip ospf cost 550
!

hostname Kansas-City
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Denver
  bandwidth 10000000
  delay 5500
  ip ospf cost 550
!
interface ge-1/0/0
  description to Houston
  bandwidth 10000000
  delay 9000
  ip ospf cost 900
!
interface ge-2/0/0
  description to Indianapolis
  bandwidth 10000000
  delay 5000
  ip ospf cost 500
!

hostname Houston
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Los-Angeles
  bandwidth 10000000
  delay 15500
  ip ospf cost 1550
!
interface ge-1/0/0
  description to Kansas-City
  bandwidth 10000000
  delay 9000
  ip ospf cost 900
!
interface ge-2/0/0
  description to Atlanta
  bandwidth 10000000
  delay 10000
  ip ospf cost 1000
!

hostname Atlanta
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Houston
  bandwidth 10000000
  delay 10000
  ip ospf cost 1000
!
interface ge-1/0/0
  description to Indianapolis
  bandwidth 10000000
  delay 5500
  ip ospf cost 550
!
interface ge-2/0/0
  description to Washington-DC
  bandwidth 10000000
  delay 8000
  ip ospf cost 800
!

hostname Indianapolis
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Kansas-City
  bandwidth 10000000
  delay 5000
  ip ospf cost 500
!
interface ge-1/0/0
  description to Atlanta
  bandwidth 10000000
  delay 5500
  ip ospf cost 550
!
interface ge-2/0/0
  description to Chicago
  bandwidth 10000000
  delay 2500
  ip ospf cost 250
!

hostname Chicago
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Indianapolis
  bandwidth 10000000
  delay 2500
  ip ospf cost 250
!
interface ge-1/0/0
  description to New-York
  bandwidth 10000000
  delay 8500
  ip ospf cost 850
!

hostname New-York
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Chicago
  bandwidth 10000000
  delay 8500
  ip ospf cost 850
!
interface ge-1/0/0
  description to Washington-DC
  bandwidth 10000000
  delay 2000
  ip ospf cost 200
!

hostname Washington-DC
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to Atlanta
  bandwidth 10000000
  delay 8000
  ip ospf cost 800
!
interface ge-1/0/0
  description to New-York
  bandwidth 10000000
  delay 2000
  ip ospf cost 200
!
|config}
