lib/rcc/rcc.ml: Abilene_config Array Buffer Config Hashtbl Int64 List Printf String Vini_sim Vini_topo
