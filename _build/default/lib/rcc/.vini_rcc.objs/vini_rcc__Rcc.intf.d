lib/rcc/rcc.mli: Config Vini_topo
