lib/rcc/abilene_config.ml:
