lib/rcc/config.ml: Format List Printf Result String
