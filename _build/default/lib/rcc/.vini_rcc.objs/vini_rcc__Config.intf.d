lib/rcc/config.mli: Format
