(** The rcc pipeline: audit router configurations, build the experiment
    topology they describe, and generate per-node XORP/Click-style
    configurations for the virtual network (§6.2's "machinery for
    mirroring the Abilene topology").

    The checks in {!audit} are the flavour of static analysis the rcc
    paper performs: dangling peer references, asymmetric OSPF costs,
    mismatched timers, and duplicate hostnames — faults that would make a
    mirrored experiment silently diverge from the real network. *)

val audit : Config.router_cfg list -> string list
(** Human-readable fault reports; empty means clean. *)

val build_topology :
  Config.router_cfg list -> (Vini_topo.Graph.t, string) result
(** Construct the mirrored topology.  Node ids follow the order of the
    configs; link weight/delay/bandwidth come from the interface stanzas
    (both ends must agree on cost). *)

val abilene_text : unit -> string
(** The embedded Abilene-2006 configuration dataset. *)

val abilene : unit -> Vini_topo.Graph.t
(** Parse + audit + build the Abilene mirror topology.
    @raise Failure if the embedded dataset fails its own pipeline. *)

val emit_configs : Vini_topo.Graph.t -> string
(** The inverse pipeline: render any topology as a router-configuration
    file in the dialect {!Config.parse_many} reads.  [parse → audit →
    build_topology] over the output reconstructs the topology exactly
    (weights, delays, bandwidths) — the property the test suite checks.
    Node names are sanitised to single tokens (spaces become dashes). *)

val xorp_config : Vini_topo.Graph.t -> int -> string
(** The XORP-style OSPF configuration PL-VINI would generate for one
    virtual node of the mirrored topology. *)

val click_config : Vini_topo.Graph.t -> int -> string
(** The Click-style data-plane configuration for one virtual node:
    tunnels, encapsulation table, tap plumbing. *)
