module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Ab = Vini_topo.Datasets.Abilene
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Vini = Vini_core.Vini
module Experiment = Vini_core.Experiment
module Ping = Vini_measure.Ping
module Tcp = Vini_transport.Tcp

let topology () = Vini_rcc.Rcc.abilene ()

(* PoP names in the rcc dataset use dashes; map to ids of that graph. *)
let dc g = Graph.id_of_name g "Washington-DC"
let seattle g = Graph.id_of_name g "Seattle"
let denver g = Graph.id_of_name g "Denver"
let kansas_city g = Graph.id_of_name g "Kansas-City"

let expected_paths () =
  let g = topology () in
  let names path = List.map (Graph.name g) path in
  let primary = Option.get (Graph.shortest_path g (dc g) (seattle g)) in
  let without l =
    if
      (l.Graph.a = denver g && l.Graph.b = kansas_city g)
      || (l.Graph.b = denver g && l.Graph.a = kansas_city g)
    then 100_000_000
    else l.Graph.weight
  in
  let backup =
    Option.get (Graph.shortest_path ~weight_of:without g (dc g) (seattle g))
  in
  (names primary, names backup)

(* PlanetLab nodes co-located with the 11 PoPs, running a PL-VINI slice. *)
let deploy ?(hello = 5) ?(dead = 10) ~seed ~events () =
  let engine = Engine.create ~seed () in
  let g = topology () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:g ~profile () in
  let routing =
    Iias.Ospf_routing
      {
        hello = Vini_sim.Time.sec hello;
        dead = Vini_sim.Time.sec dead;
        spf_delay = Vini_sim.Time.ms 200;
      }
  in
  let spec =
    Experiment.make ~name:"abilene-mirror" ~slice:(Slice.pl_vini "abilene")
      ~vtopo:g ~routing ~events ()
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  (engine, g, vini, inst)

(* Routing needs to be converged before the measurement clock starts. *)
let warmup_s = 40.0

type fig8 = {
  rtt_series : (float * float) list;
  rtt_before : float;
  rtt_after : float;
  detect_delay : float;
  restore_rtt : float;
}

let fig8_run ?(seed = 9001) ?(fail_at = 10.0) ?(restore_at = 34.0)
    ?(ping_interval_ms = 250) ?(hello = 5) ?(dead = 10) () =
  let events =
    [
      Experiment.at (warmup_s +. fail_at)
        (Experiment.Custom
           ( "fail Denver-KC",
             fun iias ->
               Iias.set_vlink_state iias
                 (denver (topology ()))
                 (kansas_city (topology ()))
                 false ));
      Experiment.at (warmup_s +. restore_at)
        (Experiment.Custom
           ( "restore Denver-KC",
             fun iias ->
               Iias.set_vlink_state iias
                 (denver (topology ()))
                 (kansas_city (topology ()))
                 true ));
    ]
  in
  let engine, g, _vini, inst = deploy ~hello ~dead ~seed ~events () in
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.of_sec_f warmup_s) engine;
  let v_dc = Iias.vnode iias (dc g) and v_sea = Iias.vnode iias (seattle g) in
  let total_s = 50.0 in
  let count = int_of_float (total_s *. 1000.0 /. float_of_int ping_interval_ms) in
  let ping =
    Ping.start ~stack:(Iias.tap v_dc) ~dst:(Iias.tap_addr v_sea) ~count
      ~mode:(Ping.Interval (Time.ms ping_interval_ms))
      ~reply_timeout:(Time.ms 900) ()
  in
  Engine.run ~until:(Time.of_sec_f (warmup_s +. total_s +. 5.0)) engine;
  let series =
    List.map (fun (t, rtt) -> (t -. warmup_s, rtt)) (Ping.series ping)
  in
  let in_window a b = List.filter (fun (t, _) -> t >= a && t < b) series in
  let mean pts =
    if pts = [] then 0.0
    else List.fold_left (fun acc (_, r) -> acc +. r) 0.0 pts
         /. float_of_int (List.length pts)
  in
  let before = mean (in_window 0.0 fail_at) in
  (* Detection: first reply after the failure with a clearly different RTT
     (the backup path is ~17 ms longer). *)
  let detect =
    List.find_opt
      (fun (t, r) -> t > fail_at && r > before +. 8.0)
      series
  in
  let detect_delay =
    match detect with Some (t, _) -> t -. fail_at | None -> Float.nan
  in
  let after = mean (in_window (fail_at +. 10.0) restore_at) in
  let restored = mean (in_window (restore_at +. 8.0) total_s) in
  {
    rtt_series = series;
    rtt_before = before;
    rtt_after = after;
    detect_delay;
    restore_rtt = restored;
  }

type fig9 = {
  cumulative : (float * float) list;
  positions : (float * float) list;
  total_mb : float;
  stall_start : float;
  stall_end : float;
}

let fig9_run ?(seed = 9101) ?(fail_at = 10.0) ?(restore_at = 34.0)
    ?(rwnd = 32 * 1024) () =
  let events =
    [
      Experiment.at (warmup_s +. fail_at)
        (Experiment.Custom
           ( "fail Denver-KC",
             fun iias ->
               Iias.set_vlink_state iias
                 (denver (topology ()))
                 (kansas_city (topology ()))
                 false ));
      Experiment.at (warmup_s +. restore_at)
        (Experiment.Custom
           ( "restore Denver-KC",
             fun iias ->
               Iias.set_vlink_state iias
                 (denver (topology ()))
                 (kansas_city (topology ()))
                 true ));
    ]
  in
  let engine, g, _vini, inst = deploy ~seed ~events () in
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.of_sec_f warmup_s) engine;
  let v_dc = Iias.vnode iias (dc g) and v_sea = Iias.vnode iias (seattle g) in
  let dump = Vini_measure.Tcpdump.create engine in
  Tcp.listen ~stack:(Iias.tap v_sea) ~port:5001 ~rwnd
    ~on_accept:(fun conn -> Vini_measure.Tcpdump.attach dump conn)
    ();
  let conn =
    Tcp.connect ~stack:(Iias.tap v_dc) ~dst:(Iias.tap_addr v_sea)
      ~dst_port:5001 ~rwnd ()
  in
  Tcp.send_forever conn;
  let total_s = 50.0 in
  Engine.run ~until:(Time.of_sec_f (warmup_s +. total_s)) engine;
  let mb b = float_of_int b /. 1e6 in
  let cumulative =
    List.map
      (fun (t, b) -> (t -. warmup_s, mb b))
      (Vini_measure.Tcpdump.cumulative_bytes dump)
  in
  let positions =
    List.map
      (fun (t, s) -> (t -. warmup_s, mb s))
      (Vini_measure.Tcpdump.segment_positions dump)
  in
  let total_mb =
    match List.rev cumulative with (_, m) :: _ -> m | [] -> 0.0
  in
  let stall_start =
    let rec last_before acc = function
      | (t, _) :: rest when t <= fail_at +. 1.0 -> last_before t rest
      | _ -> acc
    in
    last_before 0.0 cumulative
  in
  let stall_end =
    match List.find_opt (fun (t, _) -> t > stall_start +. 1.0) cumulative with
    | Some (t, _) -> t
    | None -> Float.nan
  in
  { cumulative; positions; total_mb; stall_start; stall_end }

let upcall_demo ?(seed = 9201) () =
  let engine = Engine.create ~seed () in
  let g = Ab.topology () in
  let vini = Vini.create ~engine ~graph:g () in
  let small =
    Graph.create ~names:[| "a"; "b" |]
      ~links:
        [
          {
            Graph.a = 0;
            b = 1;
            bandwidth_bps = 1e9;
            delay = Time.ms 5;
            loss = 0.0;
            weight = 1;
          };
        ]
  in
  let mk name emb =
    Experiment.make ~name ~slice:(Slice.pl_vini name) ~vtopo:small
      ~embedding:emb ()
  in
  let i1 = Vini.deploy vini (mk "exp1" (fun v -> [| 0; 10 |].(v))) in
  let i2 = Vini.deploy vini (mk "exp2" (fun v -> [| 1; 9 |].(v))) in
  Vini.start i1;
  Vini.start i2;
  Engine.run ~until:(Time.sec 20) engine;
  Underlay.set_link_state (Vini.underlay vini) Ab.denver Ab.kansas_city false;
  Engine.run ~until:(Time.sec 25) engine;
  Underlay.set_link_state (Vini.underlay vini) Ab.denver Ab.kansas_city true;
  Engine.run ~until:(Time.sec 30) engine;
  (Vini.upcalls_delivered i1, Vini.upcalls_delivered i2)
