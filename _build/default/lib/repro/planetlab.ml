module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Datasets = Vini_topo.Datasets
module Underlay = Vini_phys.Underlay
module Pnode = Vini_phys.Pnode
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Iperf = Vini_measure.Iperf
module Ping = Vini_measure.Ping

type condition = Network | Iias_default | Iias_plvini

let condition_name = function
  | Network -> "Network"
  | Iias_default -> "IIAS on PlanetLab"
  | Iias_plvini -> "IIAS on PL-VINI"

type tcp_result = {
  mbps_mean : float;
  mbps_stddev : float;
  cpu_pct : float;
}

type ping_result = {
  p_min : float;
  p_avg : float;
  p_max : float;
  p_mdev : float;
  p_loss_pct : float;
}

type jitter_result = { jitter_mean_ms : float; jitter_stddev_ms : float }

(* The Abilene-colocated PlanetLab machines were 1.4 GHz / 1.267 GHz
   P-IIIs (§5.1.2); we give them an effective 2.0 GHz against the Xeon
   reference cost model (per-clock efficiency differs) — chosen so the
   PL-VINI forwarder lands near the paper's 40% CPU at ~86 Mb/s. *)
let node_speed_ghz = 2.0

let make ~seed ~condition =
  let engine = Engine.create ~seed () in
  let graph = Datasets.Planetlab3.topology () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:node_speed_ghz in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ~profile ()
  in
  let src = Datasets.Planetlab3.chicago in
  let dst = Datasets.Planetlab3.washington in
  match condition with
  | Network ->
      let client = Pnode.stack (Underlay.node underlay src) in
      let server = Pnode.stack (Underlay.node underlay dst) in
      (engine, client, server, None)
  | Iias_default | Iias_plvini ->
      let slice =
        match condition with
        | Iias_plvini -> Slice.pl_vini "iias"
        | Network | Iias_default -> Slice.default_share "iias"
      in
      let iias =
        Iias.create ~underlay ~slice
          ~vtopo:(Datasets.Planetlab3.topology ())
          ~embedding:Fun.id ()
      in
      Iias.start iias;
      let v_src = Iias.vnode iias src and v_dst = Iias.vnode iias dst in
      (engine, Iias.tap v_src, Iias.tap v_dst, Some iias)

(* Aggregate CPU across the three Click processes, like watching [ps] on
   the busiest node; the paper reports the forwarder's process. *)
let click_cpu iias =
  match iias with
  | None -> Time.zero
  | Some iias ->
      let fwdr = Iias.vnode iias Datasets.Planetlab3.new_york in
      Iias.cpu_time fwdr

let tcp_run ~duration_s ~seed ~condition =
  let engine, client, server, iias = make ~seed ~condition in
  let start = Time.sec 25 in
  let warmup = Time.sec 2 in
  let duration = Time.sec duration_s in
  let run = Iperf.tcp ~client ~server ~warmup ~start ~duration () in
  let window_open = Time.add start warmup in
  let cpu_before = ref Time.zero in
  ignore (Engine.at engine window_open (fun () -> cpu_before := click_cpu iias));
  Engine.run ~until:(Time.add window_open duration) engine;
  let cpu_used = Time.sub (click_cpu iias) !cpu_before in
  let cpu_pct =
    match iias with
    | None -> Float.nan
    | Some _ -> 100.0 *. Time.to_sec_f cpu_used /. Time.to_sec_f duration
  in
  (Iperf.tcp_mbps run, cpu_pct)

let tcp condition ?(runs = 5) ?(duration_s = 10) ?(seed = 5001) () =
  let results =
    List.init runs (fun i ->
        tcp_run ~duration_s ~seed:(seed + (41 * i)) ~condition)
  in
  let mbps = Vini_std.Stats.create () and cpu = Vini_std.Stats.create () in
  List.iter
    (fun (m, c) ->
      Vini_std.Stats.add mbps m;
      if not (Float.is_nan c) then Vini_std.Stats.add cpu c)
    results;
  {
    mbps_mean = Vini_std.Stats.mean mbps;
    mbps_stddev = Vini_std.Stats.stddev mbps;
    cpu_pct =
      (if Vini_std.Stats.is_empty cpu then Float.nan
       else Vini_std.Stats.mean cpu);
  }

let ping condition ?(count = 10_000) ?(seed = 6001) () =
  let engine, client, server, _ = make ~seed ~condition in
  Engine.run ~until:(Time.sec 25) engine;
  let dst = Vini_phys.Ipstack.local_addr server in
  let p = Ping.start ~stack:client ~dst ~count () in
  Engine.run ~until:(Time.sec 1200) engine;
  let rtts = Ping.rtt_ms p in
  {
    p_min = Vini_std.Stats.min rtts;
    p_avg = Vini_std.Stats.mean rtts;
    p_max = Vini_std.Stats.max rtts;
    p_mdev = Vini_std.Stats.mdev rtts;
    p_loss_pct = Ping.loss_pct p;
  }

let default_rates = [ 1.0; 5.0; 10.0; 15.0; 20.0; 25.0; 30.0; 35.0; 40.0; 45.0 ]

let one_udp ~condition ~seed ~duration_s ~rate_mbps =
  let engine, client, server, _ = make ~seed ~condition in
  let start = Time.sec 25 in
  let duration = Time.sec duration_s in
  let run =
    Iperf.udp ~client ~server ~rate_bps:(rate_mbps *. 1e6) ~start ~duration ()
  in
  Engine.run ~until:(Time.add (Time.add start duration) (Time.sec 2)) engine;
  (Iperf.udp_loss_pct run, Iperf.udp_jitter_ms run)

let jitter condition ?(rates_mbps = [ 1.0; 10.0; 25.0; 50.0 ]) ?(duration_s = 10)
    ?(seed = 7001) () =
  let stats = Vini_std.Stats.create () in
  List.iteri
    (fun i rate ->
      let _, j =
        one_udp ~condition ~seed:(seed + (13 * i)) ~duration_s ~rate_mbps:rate
      in
      Vini_std.Stats.add stats j)
    rates_mbps;
  {
    jitter_mean_ms = Vini_std.Stats.mean stats;
    jitter_stddev_ms = Vini_std.Stats.stddev stats;
  }

let loss_sweep condition ?(rates_mbps = default_rates) ?(duration_s = 10)
    ?(seed = 8001) () =
  List.mapi
    (fun i rate ->
      let loss, _ =
        one_udp ~condition ~seed:(seed + (17 * i)) ~duration_s ~rate_mbps:rate
      in
      (rate, loss))
    rates_mbps
