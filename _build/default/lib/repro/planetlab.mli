(** §5.1.2 — microbenchmark #2, the overlay on shared PlanetLab nodes.

    Reproduces Table 4 (TCP throughput with CPU), Table 5 (ping), Table 6
    (UDP jitter), and Figure 6 (packet loss vs UDP rate, with and without
    PL-VINI's CPU reservation + real-time boost) on the Chicago — New York
    — Washington D.C. PlanetLab chain. *)

type condition =
  | Network          (** kernel path between the physical nodes *)
  | Iias_default     (** overlay in a default fair-share slice *)
  | Iias_plvini      (** overlay with 25% reservation + rt priority *)

val condition_name : condition -> string

type tcp_result = {
  mbps_mean : float;
  mbps_stddev : float;
  cpu_pct : float;   (** NaN for [Network] (no Click process) *)
}

type ping_result = {
  p_min : float;
  p_avg : float;
  p_max : float;
  p_mdev : float;
  p_loss_pct : float;
}

type jitter_result = { jitter_mean_ms : float; jitter_stddev_ms : float }

val tcp : condition -> ?runs:int -> ?duration_s:int -> ?seed:int -> unit -> tcp_result
val ping : condition -> ?count:int -> ?seed:int -> unit -> ping_result

val jitter :
  condition -> ?rates_mbps:float list -> ?duration_s:int -> ?seed:int -> unit ->
  jitter_result
(** Jitter pooled across CBR rates (the paper found no rate correlation
    and reports one number per condition). *)

val loss_sweep :
  condition -> ?rates_mbps:float list -> ?duration_s:int -> ?seed:int -> unit ->
  (float * float) list
(** Figure 6: (rate Mb/s, loss %) per CBR rate. *)

val default_rates : float list
