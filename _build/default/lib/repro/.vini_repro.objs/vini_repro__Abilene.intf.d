lib/repro/abilene.mli: Vini_topo
