lib/repro/abilene.ml: Array Float List Option Vini_core Vini_measure Vini_overlay Vini_phys Vini_rcc Vini_sim Vini_topo Vini_transport
