lib/repro/deter.mli:
