lib/repro/planetlab.mli:
