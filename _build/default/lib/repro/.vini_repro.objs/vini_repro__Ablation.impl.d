lib/repro/ablation.ml: Abilene Float Fun List Vini_measure Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
