lib/repro/ablation.mli:
