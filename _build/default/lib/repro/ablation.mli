(** Ablations of the design decisions the paper's evaluation leans on.

    Three questions the tables imply but never decompose:

    - {b Which PL-VINI knob does the work?}  §4.1.2 adds two CPU-scheduler
      features at once — the 25% reservation and the real-time priority
      boost.  {!scheduler_knobs} measures all four combinations.
    - {b Is Figure 6's loss really socket-buffer overflow?}  The paper
      hypothesises the mechanism (§5.1.2); {!buffer_sweep} varies the
      buffer size and watches the loss move.
    - {b What does the dead interval buy?}  §5.2 runs one timer setting;
      {!timer_sweep} shows detection delay tracking the configured dead
      interval across settings. *)

type knob_result = {
  label : string;
  mbps : float;
  ping_avg_ms : float;
  ping_mdev_ms : float;
}

val scheduler_knobs :
  ?duration_s:int -> ?seed:int -> unit -> knob_result list
(** Fair share, reservation-only, rt-only, and both (PL-VINI), each
    measured like Table 4/5 on the PlanetLab chain. *)

val buffer_sweep :
  ?rate_mbps:float -> ?buffers_kb:int list -> ?duration_s:int -> ?seed:int ->
  unit -> (int * float) list
(** (buffer KB, loss %) at a fixed CBR rate on a default-share slice. *)

val timer_sweep :
  ?timers:(int * int) list -> ?seed:int -> unit -> (int * int * float) list
(** (hello s, dead s, measured detection delay s) on the Abilene mirror. *)

val isolation_matrix :
  ?duration_s:int -> ?seed:int -> unit -> knob_result list
(** §3.4's isolation story, quantified: a measuring experiment shares
    three nodes with a noisy one blasting 60 Mb/s of UDP.  Four
    configurations: no isolation at all, CPU isolation only (PL-VINI
    scheduler knobs), bandwidth isolation only (per-slice HTB with an
    assured rate, §4.1.1), and both. *)
