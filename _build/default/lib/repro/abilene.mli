(** §5.2 — intra-domain routing changes on the Abilene mirror.

    The virtual network mirrors the 11-PoP Abilene backbone with the
    real OSPF weights, extracted from the embedded router configurations
    through the rcc pipeline (§6.2).  At t=10 s the Denver – Kansas City
    virtual link fails (packets dropped inside Click); at t=34 s it
    recovers.  Figure 8 watches ping RTT between Washington D.C. and
    Seattle; Figure 9 watches a 16 KB-window TCP transfer. *)

val topology : unit -> Vini_topo.Graph.t
(** The mirror topology, via the rcc config pipeline. *)

val expected_paths : unit -> (string list * string list)
(** (primary, post-failure) D.C.->Seattle shortest paths by PoP name —
    the Figure 7 routes. *)

type fig8 = {
  rtt_series : (float * float) list;  (** (s since epoch, RTT ms) *)
  rtt_before : float;                 (** mean RTT pre-failure *)
  rtt_after : float;                  (** mean RTT on the backup path *)
  detect_delay : float;               (** s from failure to first reroute *)
  restore_rtt : float;                (** mean RTT after restoration *)
}

val fig8_run :
  ?seed:int -> ?fail_at:float -> ?restore_at:float -> ?ping_interval_ms:int ->
  ?hello:int -> ?dead:int -> unit -> fig8
(** [hello]/[dead] override the OSPF timers (defaults 5/10 s, §5.2
    footnote 3) — the timer-sweep ablation varies them. *)

type fig9 = {
  cumulative : (float * float) list;   (** (s, MB transferred) — Fig 9a *)
  positions : (float * float) list;    (** (s, MB offset in stream) — Fig 9b *)
  total_mb : float;
  stall_start : float;                 (** last progress before the outage *)
  stall_end : float;                   (** first progress after reroute *)
}

val fig9_run :
  ?seed:int -> ?fail_at:float -> ?restore_at:float -> ?rwnd:int -> unit -> fig9

val upcall_demo : ?seed:int -> unit -> int * int
(** Fail and restore a {e physical} Abilene link with two experiments
    deployed; returns (upcalls seen by experiment 1, by experiment 2) —
    the §6.1 exposure mechanism. *)
