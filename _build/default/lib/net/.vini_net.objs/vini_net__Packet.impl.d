lib/net/packet.ml: Addr Buffer Format Wire
