lib/net/prefix.ml: Addr Format Int Option Printf String
