lib/net/addr.ml: Format Hashtbl Int Printf String
