(** CIDR prefixes (network address + mask length). *)

type t

val make : Addr.t -> int -> t
(** [make addr len] masks [addr] down to its network address.
    @raise Invalid_argument when [len] is outside [0, 32]. *)

val of_string : string -> t
(** Parse ["10.0.0.0/8"]. A bare address parses as a /32.
    @raise Invalid_argument on bad input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val network : t -> Addr.t
val length : t -> int

val contains : t -> Addr.t -> bool
val subsumes : t -> t -> bool
(** [subsumes outer inner]: every address of [inner] is in [outer]. *)

val host : t -> int -> Addr.t
(** [host t i] is the [i]-th address of the prefix (0 = network address). *)

val broadcast_addr : t -> Addr.t
val size : t -> int
(** Number of addresses covered (2^(32-len)); saturates at [max_int]. *)

val default_route : t  (** 0.0.0.0/0 *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
