let eth_header = 14
let ipv4_header = 20
let udp_header = 8
let tcp_header = 20
let icmp_header = 8
let openvpn_overhead = ipv4_header + udp_header + 13
let ethernet_mtu = 1500
let default_udp_payload = 1430

let checksum buf =
  let len = Bytes.length buf in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if len land 1 = 1 then
    sum := !sum + (Char.code (Bytes.get buf (len - 1)) lsl 8);
  (* Fold carries back into the low 16 bits. *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let checksum_valid buf = checksum buf = 0
