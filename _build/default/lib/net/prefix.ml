type t = { network : Addr.t; length : int }

let mask_of_length len =
  if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
  let network = Addr.of_int (Addr.to_int addr land mask_of_length len) in
  { network; length = len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Addr.of_string_opt s)
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Addr.of_string_opt addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg ("Prefix.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%s/%d" (Addr.to_string t.network) t.length

let network t = t.network
let length t = t.length

let contains t addr =
  Addr.to_int addr land mask_of_length t.length = Addr.to_int t.network

let subsumes outer inner =
  outer.length <= inner.length && contains outer inner.network

let host t i = Addr.of_int (Addr.to_int t.network + i)
let broadcast_addr t = host t ((1 lsl (32 - t.length)) - 1)
let size t = 1 lsl (32 - t.length)
let default_route = make Addr.any 0

let compare a b =
  let c = Addr.compare a.network b.network in
  if c <> 0 then c else Int.compare a.length b.length

let equal a b = compare a b = 0
let pp ppf t = Format.pp_print_string ppf (to_string t)
