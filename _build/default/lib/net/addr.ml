type t = int

let max_addr = 0xFFFFFFFF

let of_int i =
  if i < 0 || i > max_addr then invalid_arg "Addr.of_int: out of range";
  i

let to_int t = t

let of_octets a b c d =
  let octet name v =
    if v < 0 || v > 255 then invalid_arg ("Addr.of_octets: bad octet " ^ name);
    v
  in
  (octet "a" a lsl 24) lor (octet "b" b lsl 16) lor (octet "c" c lsl 8)
  lor octet "d" d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
         int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256
             && d >= 0 && d < 256 ->
          Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg ("Addr.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let compare = Int.compare
let equal = Int.equal
let hash t = Hashtbl.hash t
let succ t = if t = max_addr then 0 else t + 1
let add t n = (t + n) land max_addr
let any = 0
let broadcast = max_addr
let localhost = of_octets 127 0 0 1
let pp ppf t = Format.pp_print_string ppf (to_string t)
