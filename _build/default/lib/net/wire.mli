(** Wire-format constants and the Internet checksum.

    The simulator does not serialise packets to real byte buffers, but it
    accounts for their on-the-wire size exactly, so link serialisation
    delays and encapsulation overheads (a central concern of the paper's
    microbenchmarks) are faithful. *)

val eth_header : int (* 14 bytes *)
val ipv4_header : int (* 20 bytes, no options *)
val udp_header : int (* 8 bytes *)
val tcp_header : int (* 20 bytes, no options *)
val icmp_header : int (* 8 bytes *)

val openvpn_overhead : int
(** Extra bytes OpenVPN adds per tunnelled packet: outer IP + UDP plus
    crypto framing (~41 bytes with the default cipher). *)

val ethernet_mtu : int (* 1500 *)

val default_udp_payload : int (* 1430 bytes — the iperf UDP payload size used throughout §5. *)

val checksum : Bytes.t -> int
(** RFC 1071 Internet checksum of a byte buffer (16-bit one's complement of
    the one's-complement sum). *)

val checksum_valid : Bytes.t -> bool (* A buffer with its checksum folded in sums to 0xFFFF. *)
