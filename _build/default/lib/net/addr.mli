(** IPv4 addresses.

    Addresses are stored as non-negative ints in [0, 2^32), which OCaml's
    63-bit native ints hold exactly; this keeps arithmetic (subnet math,
    iteration over hosts) free of Int32 boxing. *)

type t = private int

val of_int : int -> t (* @raise Invalid_argument when outside [0, 2^32). *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t (* [of_octets a b c d] is the address [a.b.c.d]. *)

val of_string : string -> t (* Parse dotted-quad notation. @raise Invalid_argument on bad input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t (* Next address, wrapping at 255.255.255.255. *)

val add : t -> int -> t
val any : t (* 0.0.0.0 *)
val broadcast : t (* 255.255.255.255 *)
val localhost : t (* 127.0.0.1 *)

val pp : Format.formatter -> t -> unit
