(** Timestamped event log.

    A light append-only record of (time, point, detail) triples used by
    integration tests to assert event ordering and by the CLI's verbose
    mode.  Packet-level capture lives in [Vini_measure.Tcpdump]. *)

type t

val create : Engine.t -> t
val record : t -> string -> string -> unit
(** [record t point detail] stamps the engine's current time. *)

val events : t -> (Time.t * string * string) list
(** In chronological (insertion) order. *)

val find : t -> point:string -> (Time.t * string) list
(** All events recorded at a given point. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
