lib/sim/engine.mli: Time Vini_std
