lib/sim/trace.ml: Engine Format List String Time
