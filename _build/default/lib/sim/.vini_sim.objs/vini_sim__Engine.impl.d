lib/sim/engine.ml: List Time Vini_std
