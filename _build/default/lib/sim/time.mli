(** Simulation time as int64 nanoseconds.

    Integer time keeps event ordering exact: two events scheduled from the
    same float expression can never be reordered by rounding, which matters
    for reproducibility of convergence experiments. *)

type t = int64

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_sec_f : float -> t
(** Round a float duration in seconds to whole nanoseconds. *)

val to_sec_f : t -> float
val to_ms_f : t -> float
val of_ms_f : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints seconds with microsecond precision, e.g. ["12.345678s"]. *)
