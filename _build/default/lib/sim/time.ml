type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L
let of_sec_f s = Int64.of_float (Float.round (s *. 1e9))
let to_sec_f t = Int64.to_float t /. 1e9
let to_ms_f t = Int64.to_float t /. 1e6
let of_ms_f m = Int64.of_float (Float.round (m *. 1e6))
let add = Int64.add
let sub = Int64.sub
let mul t n = Int64.mul t (Int64.of_int n)
let compare = Int64.compare
let ( <= ) a b = Int64.compare a b <= 0
let ( < ) a b = Int64.compare a b < 0
let ( >= ) a b = Int64.compare a b >= 0
let ( > ) a b = Int64.compare a b > 0
let min a b = if Stdlib.( <= ) (Int64.compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (Int64.compare a b) 0 then a else b
let pp ppf t = Format.fprintf ppf "%.6fs" (to_sec_f t)
