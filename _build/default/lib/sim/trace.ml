type t = {
  engine : Engine.t;
  mutable events_rev : (Time.t * string * string) list;
}

let create engine = { engine; events_rev = [] }

let record t point detail =
  t.events_rev <- (Engine.now t.engine, point, detail) :: t.events_rev

let events t = List.rev t.events_rev

let find t ~point =
  List.filter_map
    (fun (time, p, detail) -> if String.equal p point then Some (time, detail) else None)
    (events t)

let clear t = t.events_rev <- []

let pp ppf t =
  List.iter
    (fun (time, point, detail) ->
      Format.fprintf ppf "%a %-20s %s@." Time.pp time point detail)
    (events t)
