lib/transport/udp_flow.mli: Vini_net Vini_phys Vini_sim
