lib/transport/tcp.ml: Float Hashtbl List Vini_net Vini_phys Vini_sim
