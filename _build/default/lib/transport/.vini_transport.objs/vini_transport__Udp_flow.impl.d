lib/transport/udp_flow.ml: Vini_net Vini_phys Vini_sim Vini_std
