lib/transport/tcp.mli: Vini_net Vini_phys Vini_sim
