(** Constant-bit-rate UDP flows with iperf-style accounting.

    The sender paces numbered, timestamped probe datagrams at a configured
    rate; the receiver counts arrivals, losses (by sequence gap),
    reordering, and RFC 1889 interarrival jitter — exactly the quantities
    iperf's UDP test reports in §5.1's behaviour experiments (Table 6 and
    Figure 6). *)

type sender
type receiver

type receiver_stats = {
  received : int;
  lost : int;              (** sequence-gap estimate, like iperf *)
  out_of_order : int;
  jitter_s : float;        (** RFC 1889 smoothed jitter, seconds *)
  bytes : int;
  loss_pct : float;
}

val receiver : stack:Vini_phys.Ipstack.t -> port:int -> unit -> receiver
val receiver_stats : receiver -> receiver_stats

val sender :
  stack:Vini_phys.Ipstack.t ->
  dst:Vini_net.Addr.t ->
  dst_port:int ->
  rate_bps:float ->
  ?payload_bytes:int ->
  ?flow_id:int ->
  duration:Vini_sim.Time.t ->
  unit ->
  sender
(** Starts immediately; stops after [duration].  Default payload is the
    paper's 1430 bytes. *)

val sent : sender -> int
val sender_running : sender -> bool
