module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Ipstack = Vini_phys.Ipstack

type receiver = {
  mutable received : int;
  mutable bytes : int;
  mutable max_seq : int;
  mutable out_of_order : int;
  jitter : Vini_std.Stats.Jitter.j;
  r_engine : Engine.t;
}

type receiver_stats = {
  received : int;
  lost : int;
  out_of_order : int;
  jitter_s : float;
  bytes : int;
  loss_pct : float;
}

let receiver ~stack ~port () =
  let r =
    {
      received = 0;
      bytes = 0;
      max_seq = -1;
      out_of_order = 0;
      jitter = Vini_std.Stats.Jitter.create ();
      r_engine = Ipstack.engine stack;
    }
  in
  Ipstack.bind_udp stack ~port (fun pkt ->
      match pkt.Packet.proto with
      | Packet.Udp { body = Packet.Probe p; _ } ->
          r.received <- r.received + 1;
          r.bytes <- r.bytes + Packet.size pkt;
          if p.Packet.seq > r.max_seq then r.max_seq <- p.Packet.seq
          else r.out_of_order <- r.out_of_order + 1;
          Vini_std.Stats.Jitter.observe r.jitter
            ~sent:(Time.to_sec_f p.Packet.sent_ns)
            ~received:(Time.to_sec_f (Engine.now r.r_engine))
      | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ -> ());
  r

let receiver_stats r =
  let expected = r.max_seq + 1 in
  let lost = max 0 (expected - r.received) in
  {
    received = r.received;
    lost;
    out_of_order = r.out_of_order;
    jitter_s = Vini_std.Stats.Jitter.value r.jitter;
    bytes = r.bytes;
    loss_pct =
      (if expected = 0 then 0.0
       else 100.0 *. float_of_int lost /. float_of_int expected);
  }

type sender = { mutable seq : int; mutable running : bool }

let sender ~stack ~dst ~dst_port ~rate_bps
    ?(payload_bytes = Vini_net.Wire.default_udp_payload) ?(flow_id = 0)
    ~duration () =
  if rate_bps <= 0.0 then invalid_arg "Udp_flow.sender: rate must be positive";
  let engine = Ipstack.engine stack in
  let s = { seq = 0; running = true } in
  let sport = Ipstack.alloc_ephemeral stack in
  let wire = payload_bytes + Vini_net.Wire.ipv4_header + Vini_net.Wire.udp_header in
  let interval = Time.of_sec_f (float_of_int (wire * 8) /. rate_bps) in
  let stop_at = Time.add (Engine.now engine) duration in
  let rec tick () =
    if s.running then begin
      if Time.compare (Engine.now engine) stop_at >= 0 then s.running <- false
      else begin
        let probe =
          Packet.Probe
            {
              Packet.flow = flow_id;
              seq = s.seq;
              sent_ns = Engine.now engine;
              pad = payload_bytes;
            }
        in
        s.seq <- s.seq + 1;
        Ipstack.send stack
          (Packet.udp ~src:(Ipstack.local_addr stack) ~dst ~sport
             ~dport:dst_port probe);
        ignore (Engine.after engine interval tick)
      end
    end
  in
  tick ();
  s

let sent s = s.seq
let sender_running s = s.running
