module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Ipstack = Vini_phys.Ipstack
module Tcp = Vini_transport.Tcp
module Udp_flow = Vini_transport.Udp_flow

type tcp_run = {
  engine : Engine.t;
  mutable conns : Tcp.t list;
  mutable accepted : Tcp.t list;
  mutable measured_bytes : int;
  mutable measuring : bool;
  duration : Time.t;
}

let tcp ~client ~server ?(streams = 20) ?(rwnd = Tcp.default_rwnd)
    ?(port = 5001) ?(warmup = Time.sec 2) ~start ~duration () =
  let engine = Ipstack.engine client in
  let run =
    {
      engine;
      conns = [];
      accepted = [];
      measured_bytes = 0;
      measuring = false;
      duration;
    }
  in
  Tcp.listen ~stack:server ~port ~rwnd
    ~on_accept:(fun conn ->
      run.accepted <- conn :: run.accepted;
      Tcp.on_deliver conn (fun n ->
          if run.measuring then run.measured_bytes <- run.measured_bytes + n))
    ();
  ignore
    (Engine.at engine start (fun () ->
         for _ = 1 to streams do
           let conn =
             Tcp.connect ~stack:client ~dst:(Ipstack.local_addr server)
               ~dst_port:port ~rwnd ()
           in
           Tcp.send_forever conn;
           run.conns <- conn :: run.conns
         done));
  ignore
    (Engine.at engine (Time.add start warmup) (fun () -> run.measuring <- true));
  ignore
    (Engine.at engine
       (Time.add (Time.add start warmup) duration)
       (fun () -> run.measuring <- false));
  run

let tcp_mbps run =
  float_of_int (run.measured_bytes * 8) /. Time.to_sec_f run.duration /. 1e6

let tcp_total_delivered run = run.measured_bytes

let tcp_retransmits run =
  List.fold_left (fun acc c -> acc + (Tcp.stats c).Tcp.retransmits) 0 run.conns

let tcp_timeouts run =
  List.fold_left (fun acc c -> acc + (Tcp.stats c).Tcp.timeouts) 0 run.conns

type udp_run = { receiver : Udp_flow.receiver }

let udp ~client ~server ~rate_bps ?payload_bytes ?(port = 5001) ~start
    ~duration () =
  let engine = Ipstack.engine client in
  let receiver = Udp_flow.receiver ~stack:server ~port () in
  ignore
    (Engine.at engine start (fun () ->
         ignore
           (Udp_flow.sender ~stack:client ~dst:(Ipstack.local_addr server)
              ~dst_port:port ~rate_bps ?payload_bytes ~duration ())));
  { receiver }

let udp_loss_pct run = (Udp_flow.receiver_stats run.receiver).Udp_flow.loss_pct

let udp_jitter_ms run =
  (Udp_flow.receiver_stats run.receiver).Udp_flow.jitter_s *. 1e3

let udp_received run = (Udp_flow.receiver_stats run.receiver).Udp_flow.received
