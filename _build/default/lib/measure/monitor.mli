(** Periodic gauge sampling — the "collect traces of the experiment"
    facility §6.2 asks for.

    Register named gauges (any [unit -> float]); the monitor samples them
    all on a fixed period and keeps the time series.  For cumulative
    counters (bytes forwarded, CPU time), {!rate} differentiates the
    series into a per-second rate. *)

type t

val create :
  engine:Vini_sim.Engine.t -> ?interval:Vini_sim.Time.t -> unit -> t
(** Sampling starts immediately (default every second) and runs until
    {!stop}. *)

val gauge : t -> name:string -> (unit -> float) -> unit
(** @raise Invalid_argument on duplicate names. *)

val names : t -> string list

val series : t -> name:string -> (float * float) list
(** (sample time s, value) — raw samples, chronological. *)

val rate : t -> name:string -> (float * float) list
(** Per-second first difference of a cumulative gauge. *)

val stop : t -> unit

(** {2 Prewired gauges} *)

val watch_vnode : t -> Vini_overlay.Iias.vnode -> prefix:string -> unit
(** Registers [<prefix>.cpu_s], [<prefix>.forwarded], [<prefix>.delivered]
    and [<prefix>.sock_drops] for an IIAS virtual node. *)
