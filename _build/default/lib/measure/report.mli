(** Rendering helpers for the evaluation harness: aligned tables
    (paper-value vs measured-value rows) and compact ASCII series plots
    for the figure reproductions. *)

val table : title:string -> header:string list -> rows:string list list -> unit
(** Print an aligned table to stdout. *)

val series :
  title:string ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) list ->
  unit
(** Print a series as an ASCII scatter/line plot plus the raw points. *)

val points : title:string -> (float * float) list -> unit
(** Just the raw (x, y) pairs, one per line. *)

val fmt_f : float -> string
(** Compact float: 3 significant-ish decimals. *)
