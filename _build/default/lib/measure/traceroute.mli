(** traceroute over any host stack.

    Sends ICMP echo probes with increasing TTL (the Windows-style variant:
    the destination answers the final probe with an echo reply, while each
    intermediate virtual router returns Time-Exceeded from its own
    address).  Lets an experimenter see exactly which overlay path traffic
    takes — e.g. confirming Figure 7's reroute hop by hop. *)

type hop = {
  ttl : int;
  responder : Vini_net.Addr.t option;  (** None = probe timed out *)
  rtt_ms : float;
}

type t

val start :
  stack:Vini_phys.Ipstack.t ->
  dst:Vini_net.Addr.t ->
  ?max_ttl:int ->
  ?probe_timeout:Vini_sim.Time.t ->
  ?on_done:(hop list -> unit) ->
  unit ->
  t
(** One probe per TTL, sequentially; finishes when the destination
    answers or [max_ttl] (default 30) is exhausted. *)

val hops : t -> hop list
val reached : t -> bool
val finished : t -> bool
