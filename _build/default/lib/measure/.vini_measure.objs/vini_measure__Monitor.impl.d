lib/measure/monitor.ml: Iias List Vini_overlay Vini_sim
