lib/measure/report.ml: Array Float List Printf String
