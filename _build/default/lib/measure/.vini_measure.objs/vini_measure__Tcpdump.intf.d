lib/measure/tcpdump.mli: Vini_net Vini_sim Vini_transport
