lib/measure/report.mli:
