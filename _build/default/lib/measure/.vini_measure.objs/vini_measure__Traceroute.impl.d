lib/measure/traceroute.ml: List Vini_net Vini_phys Vini_sim
