lib/measure/monitor.mli: Vini_overlay Vini_sim
