lib/measure/traceroute.mli: Vini_net Vini_phys Vini_sim
