lib/measure/iperf.mli: Vini_phys Vini_sim
