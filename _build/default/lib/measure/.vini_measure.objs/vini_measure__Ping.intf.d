lib/measure/ping.mli: Vini_net Vini_phys Vini_sim Vini_std
