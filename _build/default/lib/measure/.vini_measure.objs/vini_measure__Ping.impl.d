lib/measure/ping.ml: List Vini_net Vini_phys Vini_sim Vini_std
