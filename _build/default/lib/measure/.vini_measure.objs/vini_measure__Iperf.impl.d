lib/measure/iperf.ml: List Vini_phys Vini_sim Vini_transport
