lib/measure/tcpdump.ml: List Vini_net Vini_sim Vini_transport
