module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Ipstack = Vini_phys.Ipstack

type mode = Flood | Interval of Time.t

let flood_floor = Time.ms 10
let next_ident = ref 0x4000

type t = {
  stack : Ipstack.t;
  engine : Engine.t;
  dst : Vini_net.Addr.t;
  count : int;
  mode : mode;
  payload_bytes : int;
  reply_timeout : Time.t;
  ident : int;
  mutable sent : int;
  mutable received : int;
  mutable outstanding : int option;        (* seq awaiting reply *)
  mutable sent_at : Time.t;
  mutable timeout_h : Engine.handle option;
  rtts : Vini_std.Stats.t;
  mutable series_rev : (float * float) list;
  mutable finished : bool;
  mutable finish_hooks : (unit -> unit) list;
}

let finish t =
  if not t.finished then begin
    t.finished <- true;
    (match t.timeout_h with Some h -> Engine.cancel h | None -> ());
    List.iter (fun f -> f ()) t.finish_hooks
  end

let rec send_next t =
  if t.sent >= t.count then begin
    if t.outstanding = None then finish t
  end
  else begin
    let seq = t.sent in
    t.sent <- t.sent + 1;
    t.outstanding <- Some seq;
    t.sent_at <- Engine.now t.engine;
    let echo =
      Packet.Echo_request
        {
          Packet.ident = t.ident;
          icmp_seq = seq;
          sent_ns = Engine.now t.engine;
          data_len = t.payload_bytes;
        }
    in
    Ipstack.send t.stack
      (Packet.icmp ~src:(Ipstack.local_addr t.stack) ~dst:t.dst echo);
    (* Unanswered probes give way to the next one after the timeout. *)
    (match t.timeout_h with Some h -> Engine.cancel h | None -> ());
    t.timeout_h <-
      Some
        (Engine.after t.engine t.reply_timeout (fun () ->
             if t.outstanding = Some seq then begin
               t.outstanding <- None;
               schedule_next t ~after:Time.zero
             end))
  end

and schedule_next t ~after =
  if t.sent >= t.count then begin
    if t.outstanding = None then finish t
  end
  else ignore (Engine.after t.engine after (fun () -> send_next t))

let on_reply t (e : Packet.echo) =
  if e.Packet.ident = t.ident then begin
    let now = Engine.now t.engine in
    let rtt_ms = Time.to_ms_f (Time.sub now e.Packet.sent_ns) in
    t.received <- t.received + 1;
    Vini_std.Stats.add t.rtts rtt_ms;
    t.series_rev <-
      (Time.to_sec_f e.Packet.sent_ns, rtt_ms) :: t.series_rev;
    match t.outstanding with
    | Some seq when seq = e.Packet.icmp_seq ->
        t.outstanding <- None;
        (match t.timeout_h with Some h -> Engine.cancel h | None -> ());
        t.timeout_h <- None;
        let gap =
          match t.mode with
          | Flood ->
              (* ping -f: next probe when the reply lands, with a floor. *)
              let elapsed = Time.sub now t.sent_at in
              Time.max Time.zero (Time.sub flood_floor elapsed)
          | Interval i ->
              let elapsed = Time.sub now t.sent_at in
              Time.max Time.zero (Time.sub i elapsed)
        in
        schedule_next t ~after:gap
    | Some _ | None ->
        (* A late reply: the timeout already moved the schedule along. *)
        ()
  end

let start ~stack ~dst ~count ?(mode = Flood) ?(payload_bytes = 56)
    ?(reply_timeout = Time.sec 1) () =
  incr next_ident;
  let t =
    {
      stack;
      engine = Ipstack.engine stack;
      dst;
      count;
      mode;
      payload_bytes;
      reply_timeout;
      ident = !next_ident;
      sent = 0;
      received = 0;
      outstanding = None;
      sent_at = Time.zero;
      timeout_h = None;
      rtts = Vini_std.Stats.create ();
      series_rev = [];
      finished = false;
      finish_hooks = [];
    }
  in
  Ipstack.set_icmp_handler stack (fun pkt ->
      match pkt.Packet.proto with
      | Packet.Icmp (Packet.Echo_reply e) -> on_reply t e
      | Packet.Icmp (Packet.Echo_request e) ->
          (* Behave like the kernel for inbound probes. *)
          Ipstack.send stack
            (Packet.icmp ~src:(Ipstack.local_addr stack) ~dst:pkt.Packet.src
               (Packet.Echo_reply e))
      | Packet.Icmp (Packet.Time_exceeded _)
      | Packet.Icmp (Packet.Dest_unreachable _)
      | Packet.Udp _ | Packet.Tcp _ -> ());
  send_next t;
  t

let sent t = t.sent
let received t = t.received

let loss_pct t =
  if t.sent = 0 then 0.0
  else 100.0 *. float_of_int (t.sent - t.received) /. float_of_int t.sent

let rtt_ms t = t.rtts
let series t = List.rev t.series_rev
let finished t = t.finished
let on_finish t f = t.finish_hooks <- t.finish_hooks @ [ f ]
