module Time = Vini_sim.Time
module Engine = Vini_sim.Engine

type gauge = { g_name : string; read : unit -> float; mutable samples_rev : (float * float) list }

type t = {
  engine : Engine.t;
  mutable gauges : gauge list;
  mutable running : bool;
}

let create ~engine ?(interval = Time.sec 1) () =
  let t = { engine; gauges = []; running = true } in
  Engine.every t.engine interval (fun () ->
      if t.running then begin
        let now = Time.to_sec_f (Engine.now t.engine) in
        List.iter
          (fun g -> g.samples_rev <- (now, g.read ()) :: g.samples_rev)
          t.gauges
      end;
      t.running);
  t

let gauge t ~name read =
  if List.exists (fun g -> g.g_name = name) t.gauges then
    invalid_arg "Monitor.gauge: duplicate name";
  t.gauges <- t.gauges @ [ { g_name = name; read; samples_rev = [] } ]

let names t = List.map (fun g -> g.g_name) t.gauges

let find t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None -> invalid_arg ("Monitor: unknown gauge " ^ name)

let series t ~name = List.rev (find t name).samples_rev

let rate t ~name =
  let rec diff = function
    | (t1, v1) :: ((t2, v2) :: _ as rest) when t2 > t1 ->
        (t2, (v2 -. v1) /. (t2 -. t1)) :: diff rest
    | _ :: rest -> diff rest
    | [] -> []
  in
  diff (series t ~name)

let stop t = t.running <- false

let watch_vnode t vn ~prefix =
  let open Vini_overlay in
  gauge t ~name:(prefix ^ ".cpu_s") (fun () ->
      Time.to_sec_f (Iias.cpu_time vn));
  gauge t ~name:(prefix ^ ".forwarded") (fun () ->
      float_of_int (Iias.stats vn).Iias.forwarded);
  gauge t ~name:(prefix ^ ".delivered") (fun () ->
      float_of_int (Iias.stats vn).Iias.delivered);
  gauge t ~name:(prefix ^ ".sock_drops") (fun () ->
      float_of_int (Iias.socket_drops vn))
