let fmt_f v =
  if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

let table ~title ~header ~rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        let cell = try List.nth row c with Failure _ -> "" in
        max acc (String.length cell))
      0 all
  in
  let widths = List.init cols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           if i = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows

let points ~title pts =
  Printf.printf "\n-- %s --\n" title;
  List.iter (fun (x, y) -> Printf.printf "  %10.4f  %12.4f\n" x y) pts

let series ~title ?(x_label = "x") ?(y_label = "y") pts =
  Printf.printf "\n== %s ==\n" title;
  match pts with
  | [] -> print_endline "  (no data)"
  | _ ->
      let xs = List.map fst pts and ys = List.map snd pts in
      let x0 = List.fold_left Float.min (List.hd xs) xs in
      let x1 = List.fold_left Float.max (List.hd xs) xs in
      let y0 = List.fold_left Float.min (List.hd ys) ys in
      let y1 = List.fold_left Float.max (List.hd ys) ys in
      let rows = 16 and cols = 64 in
      let grid = Array.make_matrix rows cols ' ' in
      let span_x = if x1 -. x0 <= 0.0 then 1.0 else x1 -. x0 in
      let span_y = if y1 -. y0 <= 0.0 then 1.0 else y1 -. y0 in
      List.iter
        (fun (x, y) ->
          let c =
            int_of_float ((x -. x0) /. span_x *. float_of_int (cols - 1))
          in
          let r =
            rows - 1
            - int_of_float ((y -. y0) /. span_y *. float_of_int (rows - 1))
          in
          grid.(max 0 (min (rows - 1) r)).(max 0 (min (cols - 1) c)) <- '*')
        pts;
      Printf.printf "  %s: %.3f .. %.3f   %s: %.3f .. %.3f\n" x_label x0 x1
        y_label y0 y1;
      Array.iter
        (fun row ->
          print_string "  |";
          Array.iter print_char row;
          print_newline ())
        grid;
      Printf.printf "  +%s\n" (String.make cols '-')
