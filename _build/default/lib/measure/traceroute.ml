module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Ipstack = Vini_phys.Ipstack

type hop = {
  ttl : int;
  responder : Vini_net.Addr.t option;
  rtt_ms : float;
}

type t = {
  stack : Ipstack.t;
  engine : Engine.t;
  dst : Vini_net.Addr.t;
  max_ttl : int;
  probe_timeout : Time.t;
  ident : int;
  on_done : hop list -> unit;
  mutable current_ttl : int;
  mutable sent_at : Time.t;
  mutable timeout_h : Engine.handle option;
  mutable hops_rev : hop list;
  mutable reached : bool;
  mutable finished : bool;
}

let next_ident = ref 0x6000

let finish t =
  if not t.finished then begin
    t.finished <- true;
    (match t.timeout_h with Some h -> Engine.cancel h | None -> ());
    t.on_done (List.rev t.hops_rev)
  end

let rec probe t =
  if t.current_ttl > t.max_ttl || t.reached then finish t
  else begin
    t.sent_at <- Engine.now t.engine;
    let echo =
      Packet.Echo_request
        {
          Packet.ident = t.ident;
          icmp_seq = t.current_ttl;
          sent_ns = Engine.now t.engine;
          data_len = 32;
        }
    in
    Ipstack.send t.stack
      (Packet.icmp ~ttl:t.current_ttl ~src:(Ipstack.local_addr t.stack)
         ~dst:t.dst echo);
    t.timeout_h <-
      Some
        (Engine.after t.engine t.probe_timeout (fun () ->
             t.timeout_h <- None;
             record t None))
  end

and record t responder =
  let rtt_ms = Time.to_ms_f (Time.sub (Engine.now t.engine) t.sent_at) in
  t.hops_rev <- { ttl = t.current_ttl; responder; rtt_ms } :: t.hops_rev;
  (match t.timeout_h with Some h -> Engine.cancel h | None -> ());
  t.timeout_h <- None;
  t.current_ttl <- t.current_ttl + 1;
  probe t

let start ~stack ~dst ?(max_ttl = 30) ?(probe_timeout = Time.sec 1)
    ?(on_done = fun _ -> ()) () =
  incr next_ident;
  let t =
    {
      stack;
      engine = Ipstack.engine stack;
      dst;
      max_ttl;
      probe_timeout;
      ident = !next_ident;
      on_done;
      current_ttl = 1;
      sent_at = Time.zero;
      timeout_h = None;
      hops_rev = [];
      reached = false;
      finished = false;
    }
  in
  Ipstack.set_icmp_handler stack (fun pkt ->
      if not t.finished then
        match pkt.Packet.proto with
        | Packet.Icmp (Packet.Time_exceeded o)
          when Vini_net.Addr.equal o.orig_dst t.dst && t.timeout_h <> None ->
            record t (Some pkt.Packet.src)
        | Packet.Icmp (Packet.Echo_reply e)
          when e.Packet.ident = t.ident && t.timeout_h <> None ->
            t.reached <- true;
            record t (Some pkt.Packet.src)
        | Packet.Icmp (Packet.Echo_request e) ->
            (* Remain a good citizen: answer inbound pings. *)
            Ipstack.send stack
              (Packet.icmp ~src:(Ipstack.local_addr stack) ~dst:pkt.Packet.src
                 (Packet.Echo_reply e))
        | Packet.Icmp _ | Packet.Udp _ | Packet.Tcp _ -> ());
  probe t;
  t

let hops t = List.rev t.hops_rev
let reached t = t.reached
let finished t = t.finished
