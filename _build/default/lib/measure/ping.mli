(** The ping tool.

    Sends ICMP echo requests over any host stack (physical or overlay tap)
    and records round-trip times.  Two modes mirror the paper's uses:
    [`Flood] is [ping -f] (next probe on reply, or at the 10 ms flood
    floor; §5.1's latency microbenchmarks), [`Interval] is plain periodic
    ping (Figure 8's RTT-during-convergence plot). *)

type t

type mode = Flood | Interval of Vini_sim.Time.t

val start :
  stack:Vini_phys.Ipstack.t ->
  dst:Vini_net.Addr.t ->
  count:int ->
  ?mode:mode ->
  ?payload_bytes:int ->
  ?reply_timeout:Vini_sim.Time.t ->
  unit ->
  t
(** Begins pinging immediately.  Default mode [Flood], payload 56 bytes,
    timeout 1 s (an unanswered probe counts as lost; the next probe is
    not delayed past the timeout). *)

val sent : t -> int
val received : t -> int
val loss_pct : t -> float
val rtt_ms : t -> Vini_std.Stats.t
(** RTT samples in milliseconds. *)

val series : t -> (float * float) list
(** (send time s, RTT ms) for replies, chronological — Figure 8's data. *)

val finished : t -> bool
val on_finish : t -> (unit -> unit) -> unit
