(** iperf 1.7.0-style measurement runs (§5.1's workload).

    TCP mode: [streams] parallel connections (the paper uses 20) from a
    client stack to a server stack; throughput is payload bytes delivered
    at the server during the measurement window.  UDP mode: one CBR flow;
    the receiver reports loss and RFC 1889 jitter.

    Both functions only schedule work; the caller runs the engine past
    [start + warmup + duration] and then reads the result. *)

type tcp_run
type udp_run

val tcp :
  client:Vini_phys.Ipstack.t ->
  server:Vini_phys.Ipstack.t ->
  ?streams:int ->
  ?rwnd:int ->
  ?port:int ->
  ?warmup:Vini_sim.Time.t ->
  start:Vini_sim.Time.t ->
  duration:Vini_sim.Time.t ->
  unit ->
  tcp_run
(** Defaults: 20 streams, iperf's 16 KB window, port 5001, 2 s warmup
    before the measurement window opens. *)

val tcp_mbps : tcp_run -> float
(** Payload throughput over the measurement window, Mb/s. *)

val tcp_total_delivered : tcp_run -> int
val tcp_retransmits : tcp_run -> int
val tcp_timeouts : tcp_run -> int

val udp :
  client:Vini_phys.Ipstack.t ->
  server:Vini_phys.Ipstack.t ->
  rate_bps:float ->
  ?payload_bytes:int ->
  ?port:int ->
  start:Vini_sim.Time.t ->
  duration:Vini_sim.Time.t ->
  unit ->
  udp_run

val udp_loss_pct : udp_run -> float
val udp_jitter_ms : udp_run -> float
val udp_received : udp_run -> int
