(* Shared test plumbing: direct wiring of stacks and routing instances
   without a full overlay, with configurable delay and loss. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Ipstack = Vini_phys.Ipstack

(* Two host stacks joined by a symmetric delaying, optionally lossy pipe. *)
let stack_pair ~engine ?(delay = Time.ms 5) ?(loss = 0.0) ?(seed = 99) () =
  let rng = Vini_std.Rng.create seed in
  let a_addr = Addr.of_string "192.0.2.1" in
  let b_addr = Addr.of_string "192.0.2.2" in
  let a = ref None and b = ref None in
  let deliver_to dst pkt =
    if loss = 0.0 || Vini_std.Rng.float rng 1.0 >= loss then
      ignore
        (Engine.after engine delay (fun () ->
             match !dst with
             | Some stack -> Ipstack.deliver stack pkt
             | None -> ()))
  in
  let sa = Ipstack.create ~engine ~local_addr:a_addr ~tx:(deliver_to b) () in
  let sb = Ipstack.create ~engine ~local_addr:b_addr ~tx:(deliver_to a) () in
  a := Some sa;
  b := Some sb;
  (sa, sb)

(* A pair of point-to-point routing interfaces delivering control messages
   to receiver callbacks (set after instance creation). *)
type proto_wire = {
  iface_a : Vini_routing.Io.iface;
  iface_b : Vini_routing.Io.iface;
  mutable to_a : ifindex:int -> Packet.control -> unit;
  mutable to_b : ifindex:int -> Packet.control -> unit;
  mutable up : bool;
}

let proto_wire ~engine ?(delay = Time.ms 2) ?(cost = 1) ?(ifindex_a = 0)
    ?(ifindex_b = 0) ?(loss = 0.0) ?(loss_seed = 7) ~subnet () =
  let loss_rng = Vini_std.Rng.create loss_seed in
  let keep () = loss = 0.0 || Vini_std.Rng.float loss_rng 1.0 >= loss in
  let net = Vini_net.Prefix.of_string subnet in
  let a_addr = Vini_net.Prefix.host net 1 in
  let b_addr = Vini_net.Prefix.host net 2 in
  let rec wire =
    lazy
      {
        iface_a =
          Vini_routing.Io.make ~ifindex:ifindex_a ~ifname:"ethA" ~local:a_addr
            ~remote:b_addr ~cost
            ~send:(fun msg ~size ->
              ignore size;
              let w = Lazy.force wire in
              if w.up && keep () then
                ignore
                  (Engine.after engine delay (fun () ->
                       if w.up then w.to_b ~ifindex:ifindex_b msg)));
        iface_b =
          Vini_routing.Io.make ~ifindex:ifindex_b ~ifname:"ethB" ~local:b_addr
            ~remote:a_addr ~cost
            ~send:(fun msg ~size ->
              ignore size;
              let w = Lazy.force wire in
              if w.up && keep () then
                ignore
                  (Engine.after engine delay (fun () ->
                       if w.up then w.to_a ~ifindex:ifindex_a msg)));
        to_a = (fun ~ifindex:_ _ -> ());
        to_b = (fun ~ifindex:_ _ -> ());
        up = true;
      }
  in
  Lazy.force wire

let set_wire_state w up = w.up <- up
