(* Tests for the measurement tools: ping, iperf, tcpdump capture. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Ipstack = Vini_phys.Ipstack
module Ping = Vini_measure.Ping
module Iperf = Vini_measure.Iperf
module Tcpdump = Vini_measure.Tcpdump
module Tcp = Vini_transport.Tcp

let check = Alcotest.check

let test_ping_counts_and_rtt () =
  let engine = Engine.create ~seed:1 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.ms 12) () in
  let p = Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:100 () in
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.int "sent" 100 (Ping.sent p);
  check Alcotest.int "received" 100 (Ping.received p);
  check (Alcotest.float 0.5) "rtt = 24 ms" 24.0
    (Vini_std.Stats.mean (Ping.rtt_ms p));
  check (Alcotest.float 0.001) "no loss" 0.0 (Ping.loss_pct p);
  check Alcotest.bool "finished" true (Ping.finished p);
  check Alcotest.int "series complete" 100 (List.length (Ping.series p))

let test_ping_loss_accounting () =
  let engine = Engine.create ~seed:5 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.ms 5) ~loss:0.3 () in
  let p = Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:60 () in
  Engine.run ~until:(Time.sec 120) engine;
  check Alcotest.int "all probes sent despite loss" 60 (Ping.sent p);
  check Alcotest.bool
    (Printf.sprintf "loss observed (%.0f%%)" (Ping.loss_pct p))
    true
    (Ping.loss_pct p > 20.0)

let test_ping_flood_floor () =
  (* On a near-zero-delay path, ping -f paces at ~10 ms: 50 pings need
     about half a second. *)
  let engine = Engine.create ~seed:7 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.us 100) () in
  let p = Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:50 () in
  let finish_time = ref Time.zero in
  Ping.on_finish p (fun () -> finish_time := Engine.now engine);
  Engine.run ~until:(Time.sec 10) engine;
  let s = Time.to_sec_f !finish_time in
  check Alcotest.bool (Printf.sprintf "flood floor respected (%.2f s)" s) true
    (s > 0.45 && s < 0.65)

let test_ping_interval_mode () =
  let engine = Engine.create ~seed:9 () in
  let a, b = Harness.stack_pair ~engine ~delay:(Time.ms 1) () in
  let p =
    Ping.start ~stack:a ~dst:(Ipstack.local_addr b) ~count:10
      ~mode:(Ping.Interval (Time.ms 500)) ()
  in
  let finish_time = ref Time.zero in
  Ping.on_finish p (fun () -> finish_time := Engine.now engine);
  Engine.run ~until:(Time.sec 20) engine;
  let s = Time.to_sec_f !finish_time in
  check Alcotest.bool (Printf.sprintf "interval pacing (%.2f s)" s) true
    (s > 4.4 && s < 5.2)

let test_iperf_tcp_measures_window () =
  let engine = Engine.create ~seed:11 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 10) () in
  let run =
    Iperf.tcp ~client ~server ~streams:4 ~rwnd:(32 * 1024) ~start:(Time.sec 1)
      ~warmup:(Time.sec 1) ~duration:(Time.sec 5) ()
  in
  Engine.run ~until:(Time.sec 8) engine;
  (* 4 streams x 32 KB / 20 ms RTT = 52 Mb/s theoretical ceiling. *)
  let mbps = Iperf.tcp_mbps run in
  check Alcotest.bool (Printf.sprintf "window-bound (%.1f Mb/s)" mbps) true
    (mbps > 30.0 && mbps < 55.0);
  check Alcotest.bool "bytes counted" true (Iperf.tcp_total_delivered run > 0);
  check Alcotest.int "clean path" 0 (Iperf.tcp_retransmits run + Iperf.tcp_timeouts run)

let test_iperf_udp_loss_and_jitter () =
  let engine = Engine.create ~seed:13 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 10) ~loss:0.1 () in
  let run =
    Iperf.udp ~client ~server ~rate_bps:2e6 ~start:(Time.sec 1)
      ~duration:(Time.sec 5) ()
  in
  Engine.run ~until:(Time.sec 8) engine;
  check Alcotest.bool
    (Printf.sprintf "udp loss (%.1f%%)" (Iperf.udp_loss_pct run))
    true
    (Iperf.udp_loss_pct run > 4.0);
  check Alcotest.bool "received some" true (Iperf.udp_received run > 0);
  (* Constant delay path: jitter near zero. *)
  check Alcotest.bool "jitter small" true (Iperf.udp_jitter_ms run < 1.0)

let test_tcpdump_capture () =
  let engine = Engine.create ~seed:17 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 5) () in
  let dump = Tcpdump.create engine in
  Tcp.listen ~stack:server ~port:5001
    ~on_accept:(fun conn -> Tcpdump.attach dump conn)
    ();
  let conn =
    Tcp.connect ~stack:client ~dst:(Ipstack.local_addr server) ~dst_port:5001 ()
  in
  Tcp.send conn 50_000;
  Tcp.close conn;
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.bool "captured segments" true (Tcpdump.count dump > 10);
  let cum = Tcpdump.cumulative_bytes dump in
  check Alcotest.bool "cumulative grows to total" true
    (match List.rev cum with (_, total) :: _ -> total = 50_000 | [] -> false);
  (* Monotonic non-decreasing cumulative series. *)
  let rec monotonic = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotonic rest
    | _ -> true
  in
  check Alcotest.bool "monotonic" true (monotonic cum);
  check Alcotest.bool "positions recorded" true
    (List.length (Tcpdump.segment_positions dump) > 10)

let test_monitor_sampling_and_rate () =
  let engine = Engine.create () in
  let m = Vini_measure.Monitor.create ~engine ~interval:(Time.ms 100) () in
  let counter = ref 0.0 in
  Vini_measure.Monitor.gauge m ~name:"counter" (fun () -> !counter);
  (* The counter grows 10 units per second. *)
  Engine.every engine (Time.ms 10) (fun () ->
      counter := !counter +. 0.1;
      Time.compare (Engine.now engine) (Time.sec 5) < 0);
  Engine.run ~until:(Time.sec 3) engine;
  Vini_measure.Monitor.stop m;
  Engine.run ~until:(Time.sec 4) engine;
  let s = Vini_measure.Monitor.series m ~name:"counter" in
  check Alcotest.bool
    (Printf.sprintf "~30 samples (%d)" (List.length s))
    true
    (List.length s >= 28 && List.length s <= 31);
  let rates = Vini_measure.Monitor.rate m ~name:"counter" in
  List.iter
    (fun (_, r) ->
      check Alcotest.bool (Printf.sprintf "rate ~10/s (%.2f)" r) true
        (r > 8.0 && r < 12.0))
    rates;
  check Alcotest.(list string) "names" [ "counter" ]
    (Vini_measure.Monitor.names m)

let test_monitor_duplicate_gauge () =
  let engine = Engine.create () in
  let m = Vini_measure.Monitor.create ~engine () in
  Vini_measure.Monitor.gauge m ~name:"x" (fun () -> 0.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Monitor.gauge: duplicate name")
    (fun () -> Vini_measure.Monitor.gauge m ~name:"x" (fun () -> 0.0))

let suite =
  [
    Alcotest.test_case "ping counts and rtt" `Quick test_ping_counts_and_rtt;
    Alcotest.test_case "ping loss accounting" `Quick test_ping_loss_accounting;
    Alcotest.test_case "ping flood floor" `Quick test_ping_flood_floor;
    Alcotest.test_case "ping interval mode" `Quick test_ping_interval_mode;
    Alcotest.test_case "iperf tcp window maths" `Quick test_iperf_tcp_measures_window;
    Alcotest.test_case "iperf udp loss+jitter" `Quick test_iperf_udp_loss_and_jitter;
    Alcotest.test_case "tcpdump capture" `Quick test_tcpdump_capture;
    Alcotest.test_case "monitor sampling and rate" `Quick test_monitor_sampling_and_rate;
    Alcotest.test_case "monitor duplicate gauge" `Quick test_monitor_duplicate_gauge;
  ]
