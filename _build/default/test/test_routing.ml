(* Tests for the control plane: RIB, OSPF, RIP, the ARQ channel, BGP and
   the BGP multiplexer.  Protocol instances are wired directly with the
   test harness (no overlay), which makes failures and partitions cheap
   to inject. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Addr = Vini_net.Addr
module Prefix = Vini_net.Prefix
module Rib = Vini_routing.Rib
module Ospf = Vini_routing.Ospf
module Rip = Vini_routing.Rip
module Rchan = Vini_routing.Rchan
module Bgp = Vini_routing.Bgp
module Bgp_mux = Vini_routing.Bgp_mux

let check = Alcotest.check
let pfx = Prefix.of_string
let adr = Addr.of_string

(* --- RIB ------------------------------------------------------------------ *)

let null_rib () = Rib.create ~fea:(fun _ -> ()) ()

let recording_rib () =
  let log = ref [] in
  let rib = Rib.create ~fea:(fun c -> log := c :: !log) () in
  (rib, log)

let route proto nh metric = { Rib.next_hop = adr nh; metric; proto }

let test_rib_admin_distance () =
  let rib = null_rib () in
  let p = pfx "10.0.0.0/8" in
  Rib.update rib ~proto:Rib.Rip p (Some (route Rib.Rip "1.1.1.1" 5));
  Rib.update rib ~proto:Rib.Ospf p (Some (route Rib.Ospf "2.2.2.2" 500));
  (match Rib.best rib p with
  | Some r -> check Alcotest.bool "ospf wins over rip" true (r.Rib.proto = Rib.Ospf)
  | None -> Alcotest.fail "route expected");
  Rib.update rib ~proto:Rib.Connected p (Some (route Rib.Connected "0.0.0.0" 0));
  match Rib.best rib p with
  | Some r -> check Alcotest.bool "connected wins" true (r.Rib.proto = Rib.Connected)
  | None -> Alcotest.fail "route expected"

let test_rib_fallback_on_withdraw () =
  let rib = null_rib () in
  let p = pfx "10.0.0.0/8" in
  Rib.update rib ~proto:Rib.Ospf p (Some (route Rib.Ospf "2.2.2.2" 10));
  Rib.update rib ~proto:Rib.Rip p (Some (route Rib.Rip "1.1.1.1" 3));
  Rib.update rib ~proto:Rib.Ospf p None;
  match Rib.best rib p with
  | Some r -> check Alcotest.bool "falls back to rip" true (r.Rib.proto = Rib.Rip)
  | None -> Alcotest.fail "rip candidate should remain"

let test_rib_fea_changes () =
  let rib, log = recording_rib () in
  let p = pfx "10.0.0.0/8" in
  Rib.update rib ~proto:Rib.Ospf p (Some (route Rib.Ospf "2.2.2.2" 10));
  Rib.update rib ~proto:Rib.Ospf p (Some (route Rib.Ospf "2.2.2.2" 10));
  (* identical: no new change *)
  Rib.update rib ~proto:Rib.Ospf p None;
  let kinds =
    List.rev_map
      (function Rib.Install _ -> "install" | Rib.Withdraw _ -> "withdraw")
      !log
  in
  check Alcotest.(list string) "exactly install, withdraw" [ "install"; "withdraw" ] kinds

let test_rib_replace_all () =
  let rib = null_rib () in
  let p1 = pfx "10.1.0.0/16" and p2 = pfx "10.2.0.0/16" and p3 = pfx "10.3.0.0/16" in
  Rib.replace_all rib ~proto:Rib.Ospf
    [ (p1, route Rib.Ospf "1.1.1.1" 1); (p2, route Rib.Ospf "1.1.1.1" 2) ];
  Rib.replace_all rib ~proto:Rib.Ospf
    [ (p2, route Rib.Ospf "2.2.2.2" 5); (p3, route Rib.Ospf "1.1.1.1" 3) ];
  check Alcotest.bool "p1 gone" true (Rib.best rib p1 = None);
  check Alcotest.bool "p3 appeared" true (Rib.best rib p3 <> None);
  match Rib.best rib p2 with
  | Some r -> check Alcotest.int "p2 updated" 5 r.Rib.metric
  | None -> Alcotest.fail "p2 expected"

let test_rib_proto_mismatch_rejected () =
  let rib = null_rib () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Rib.update: proto mismatch")
    (fun () ->
      Rib.update rib ~proto:Rib.Ospf (pfx "10.0.0.0/8")
        (Some (route Rib.Rip "1.1.1.1" 1)))

(* --- OSPF (direct wires) ---------------------------------------------------- *)

(* Build a triangle a-b-c with costs, return (engine, instances, wires). *)
let ospf_triangle ?(cost_ab = 1) ?(cost_bc = 1) ?(cost_ac = 10) () =
  let engine = Engine.create ~seed:31 () in
  let w_ab = Harness.proto_wire ~engine ~cost:cost_ab ~ifindex_a:0 ~ifindex_b:0 ~subnet:"10.1.0.0/30" () in
  let w_bc = Harness.proto_wire ~engine ~cost:cost_bc ~ifindex_a:1 ~ifindex_b:0 ~subnet:"10.1.0.4/30" () in
  let w_ac = Harness.proto_wire ~engine ~cost:cost_ac ~ifindex_a:1 ~ifindex_b:1 ~subnet:"10.1.0.8/30" () in
  let mk rid prefixes ifaces =
    let rib = Rib.create ~fea:(fun _ -> ()) () in
    let config =
      Ospf.default_config ~router_id:rid
        ~local_prefixes:(List.map pfx prefixes)
    in
    let o =
      Ospf.create ~engine ~rng:(Vini_std.Rng.create (100 + rid)) ~config
        ~ifaces ~rib
    in
    (o, rib)
  in
  let oa, ra = mk 1 [ "10.0.0.1/32" ] [ w_ab.Harness.iface_a; w_ac.Harness.iface_a ] in
  let ob, rb = mk 2 [ "10.0.0.2/32" ] [ w_ab.Harness.iface_b; w_bc.Harness.iface_a ] in
  let oc, rc = mk 3 [ "10.0.0.3/32" ] [ w_bc.Harness.iface_b; w_ac.Harness.iface_b ] in
  w_ab.Harness.to_a <- (fun ~ifindex msg -> Ospf.receive oa ~ifindex msg);
  w_ab.Harness.to_b <- (fun ~ifindex msg -> Ospf.receive ob ~ifindex msg);
  w_bc.Harness.to_a <- (fun ~ifindex msg -> Ospf.receive ob ~ifindex msg);
  w_bc.Harness.to_b <- (fun ~ifindex msg -> Ospf.receive oc ~ifindex msg);
  w_ac.Harness.to_a <- (fun ~ifindex msg -> Ospf.receive oa ~ifindex msg);
  w_ac.Harness.to_b <- (fun ~ifindex msg -> Ospf.receive oc ~ifindex msg);
  Ospf.start oa;
  Ospf.start ob;
  Ospf.start oc;
  (engine, (oa, ra), (ob, rb), (oc, rc), (w_ab, w_bc, w_ac))

let best_nh rib p =
  Option.map (fun r -> Addr.to_string r.Rib.next_hop) (Rib.best rib p)

let test_ospf_adjacencies_and_routes () =
  let engine, (oa, ra), (ob, _), (oc, _), _ = ospf_triangle () in
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.int "a has two adjacencies" 2 (List.length (Ospf.full_neighbors oa));
  check Alcotest.int "b has two adjacencies" 2 (List.length (Ospf.full_neighbors ob));
  check Alcotest.int "c has two adjacencies" 2 (List.length (Ospf.full_neighbors oc));
  check Alcotest.int "lsdb has all three" 3 (List.length (Ospf.lsdb oa));
  (* a reaches c's prefix via b (cost 2) not directly (cost 10). *)
  check Alcotest.(option string) "a->c via b" (Some "10.1.0.2")
    (best_nh ra (pfx "10.0.0.3/32"))

let test_ospf_failure_reroute_and_recovery () =
  let engine, (_, ra), _, _, (w_ab, _, _) = ospf_triangle () in
  Engine.run ~until:(Time.sec 30) engine;
  (* Fail a-b: hellos stop, dead interval expires, a reroutes via the
     expensive direct a-c link. *)
  Harness.set_wire_state w_ab false;
  Engine.run ~until:(Time.sec 55) engine;
  check Alcotest.(option string) "a->b's prefix via c now" (Some "10.1.0.10")
    (best_nh ra (pfx "10.0.0.2/32"));
  check Alcotest.(option string) "a->c direct now" (Some "10.1.0.10")
    (best_nh ra (pfx "10.0.0.3/32"));
  (* Recovery. *)
  Harness.set_wire_state w_ab true;
  Engine.run ~until:(Time.sec 80) engine;
  check Alcotest.(option string) "back via b" (Some "10.1.0.2")
    (best_nh ra (pfx "10.0.0.3/32"))

let test_ospf_detection_within_dead_interval () =
  let engine, (_, ra), _, _, (w_ab, _, _) = ospf_triangle () in
  Engine.run ~until:(Time.sec 30) engine;
  Harness.set_wire_state w_ab false;
  let fail_time = Engine.now engine in
  (* Poll until the route changes; measure detection+convergence lag. *)
  let detected = ref None in
  let rec poll () =
    if !detected = None then begin
      if best_nh ra (pfx "10.0.0.2/32") = Some "10.1.0.10" then
        detected := Some (Engine.now engine)
      else ignore (Engine.after engine (Time.ms 100) poll)
    end
  in
  poll ();
  Engine.run ~until:(Time.sec 60) engine;
  match !detected with
  | None -> Alcotest.fail "never rerouted"
  | Some t ->
      let lag = Time.to_sec_f (Time.sub t fail_time) in
      check Alcotest.bool
        (Printf.sprintf "reroute within (5,11] s of failure (%.1f)" lag)
        true
        (lag > 5.0 && lag <= 11.0)

let test_ospf_spf_holddown_coalesces () =
  let engine, (oa, _), _, _, _ = ospf_triangle () in
  Engine.run ~until:(Time.sec 30) engine;
  let spf_before = Ospf.spf_runs oa in
  check Alcotest.bool
    (Printf.sprintf "spf bounded by hold-down (%d runs)" spf_before)
    true (spf_before < 25)

let test_ospf_reliable_flooding_under_loss () =
  (* 30% control-plane loss: acks + retransmission must still converge
     both LSDBs (the failure mode that motivated reliable flooding). *)
  let engine = Engine.create ~seed:41 () in
  let w =
    Harness.proto_wire ~engine ~loss:0.3 ~loss_seed:13 ~subnet:"10.1.0.0/30" ()
  in
  let mk rid prefixes ifaces =
    let rib = Rib.create ~fea:(fun _ -> ()) () in
    let config =
      Ospf.default_config ~router_id:rid ~local_prefixes:(List.map pfx prefixes)
    in
    let o =
      Ospf.create ~engine ~rng:(Vini_std.Rng.create (200 + rid)) ~config
        ~ifaces ~rib
    in
    (o, rib)
  in
  let oa, ra = mk 1 [ "10.0.0.1/32" ] [ w.Harness.iface_a ] in
  let ob, rb = mk 2 [ "10.0.0.2/32" ] [ w.Harness.iface_b ] in
  w.Harness.to_a <- (fun ~ifindex msg -> Ospf.receive oa ~ifindex msg);
  w.Harness.to_b <- (fun ~ifindex msg -> Ospf.receive ob ~ifindex msg);
  Ospf.start oa;
  Ospf.start ob;
  (* Long window: adjacency may flap under loss, but whenever both ends are
     up the LSDBs must agree and routes must exist. *)
  Engine.run ~until:(Time.sec 120) engine;
  let rec settle n =
    if n = 0 then Alcotest.fail "never converged under loss"
    else begin
      Engine.run
        ~until:(Time.add (Engine.now engine) (Time.sec 10))
        engine;
      let ok =
        Rib.best ra (pfx "10.0.0.2/32") <> None
        && Rib.best rb (pfx "10.0.0.1/32") <> None
      in
      if not ok then settle (n - 1)
    end
  in
  settle 20;
  check Alcotest.int "lsdbs agree" (List.length (Ospf.lsdb oa))
    (List.length (Ospf.lsdb ob))

let test_ospf_sequence_refutation () =
  (* A stale LSA injected back must not regress the LSDB. *)
  let engine, (oa, _), (ob, _), _, _ = ospf_triangle () in
  Engine.run ~until:(Time.sec 30) engine;
  let a_lsa_of rid o =
    List.find (fun (l : Ospf.lsa) -> l.Ospf.origin = rid) (Ospf.lsdb o)
  in
  let fresh = a_lsa_of 1 oa in
  let stale = { fresh with Ospf.seq = 0; links = [] } in
  Ospf.receive ob ~ifindex:0 (Ospf.Msg (Ospf.Flood [ stale ]));
  Engine.run ~until:(Time.sec 35) engine;
  let b_view = a_lsa_of 1 ob in
  check Alcotest.bool "b keeps the newer lsa" true (b_view.Ospf.seq >= fresh.Ospf.seq)

(* Property: on random connected graphs, converged OSPF routes match
   Dijkstra distances for every (source, destination) pair. *)
let prop_ospf_matches_dijkstra =
  QCheck.Test.make ~name:"ospf converges to dijkstra on random graphs"
    ~count:12
    QCheck.(pair (int_range 3 8) (int_bound 10_000))
    (fun (n, seed) ->
      let module Graph = Vini_topo.Graph in
      let engine = Engine.create ~seed:(seed + 1) () in
      let g =
        Vini_topo.Datasets.waxman ~rng:(Vini_std.Rng.create seed) ~n ()
      in
      (* One OSPF instance per node; one wire per link. *)
      let ribs = Array.make n None in
      let instances = Array.make n None in
      let ifaces = Array.make n [] in
      let wires =
        List.mapi
          (fun k (l : Graph.link) ->
            let w =
              Harness.proto_wire ~engine ~cost:l.Graph.weight
                ~ifindex_a:(List.length ifaces.(l.Graph.a))
                ~ifindex_b:(List.length ifaces.(l.Graph.b))
                ~subnet:
                  (Printf.sprintf "10.9.%d.%d/30" (k / 64) ((k mod 64) * 4))
                ()
            in
            ifaces.(l.Graph.a) <- ifaces.(l.Graph.a) @ [ w.Harness.iface_a ];
            ifaces.(l.Graph.b) <- ifaces.(l.Graph.b) @ [ w.Harness.iface_b ];
            (l, w))
          (Graph.links g)
      in
      for v = 0 to n - 1 do
        let rib = Rib.create ~fea:(fun _ -> ()) () in
        let config =
          {
            (Ospf.default_config ~router_id:v
               ~local_prefixes:[ Prefix.make (adr (Printf.sprintf "10.8.8.%d" (v + 1))) 32 ])
            with
            Ospf.hello_interval = Time.sec 1;
            dead_interval = Time.sec 3;
          }
        in
        let o =
          Ospf.create ~engine ~rng:(Vini_std.Rng.create (500 + v)) ~config
            ~ifaces:ifaces.(v) ~rib
        in
        ribs.(v) <- Some rib;
        instances.(v) <- Some o
      done;
      List.iter
        (fun ((l : Graph.link), w) ->
          let oa = Option.get instances.(l.Graph.a) in
          let ob = Option.get instances.(l.Graph.b) in
          w.Harness.to_a <- (fun ~ifindex msg -> Ospf.receive oa ~ifindex msg);
          w.Harness.to_b <- (fun ~ifindex msg -> Ospf.receive ob ~ifindex msg))
        wires;
      Array.iter (fun o -> Ospf.start (Option.get o)) instances;
      Engine.run ~until:(Time.sec 30) engine;
      (* Compare metrics against Dijkstra for every pair. *)
      let ok = ref true in
      for src = 0 to n - 1 do
        let dist, _ = Graph.dijkstra g src in
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let p = Prefix.make (adr (Printf.sprintf "10.8.8.%d" (dst + 1))) 32 in
            match Rib.best (Option.get ribs.(src)) p with
            | Some r -> if r.Rib.metric <> dist.(dst) then ok := false
            | None -> ok := false
          end
        done
      done;
      !ok)

(* --- RIP --------------------------------------------------------------------- *)

let rip_pair ?(scale = 0.1) () =
  let engine = Engine.create ~seed:77 () in
  let w = Harness.proto_wire ~engine ~subnet:"10.1.0.0/30" () in
  let mk rid prefixes ifaces =
    let rib = Rib.create ~fea:(fun _ -> ()) () in
    let config = Rip.scaled_config ~scale ~local_prefixes:(List.map pfx prefixes) in
    let r =
      Rip.create ~engine ~rng:(Vini_std.Rng.create (10 + rid)) ~config ~ifaces ~rib
    in
    (r, rib)
  in
  let ra, riba = mk 1 [ "10.10.0.0/24" ] [ w.Harness.iface_a ] in
  let rb, ribb = mk 2 [ "10.20.0.0/24" ] [ w.Harness.iface_b ] in
  w.Harness.to_a <- (fun ~ifindex msg -> Rip.receive ra ~ifindex msg);
  w.Harness.to_b <- (fun ~ifindex msg -> Rip.receive rb ~ifindex msg);
  Rip.start ra;
  Rip.start rb;
  (engine, (ra, riba), (rb, ribb), w)

let test_rip_learns_routes () =
  let engine, (ra, riba), (rb, ribb), _ = rip_pair () in
  Engine.run ~until:(Time.sec 20) engine;
  check Alcotest.bool "a learned b's prefix" true
    (Rib.best riba (pfx "10.20.0.0/24") <> None);
  check Alcotest.bool "b learned a's prefix" true
    (Rib.best ribb (pfx "10.10.0.0/24") <> None);
  check Alcotest.int "a table has both" 2 (List.length (Rip.table ra));
  check Alcotest.bool "messages flowed" true (Rip.messages_sent rb > 0)

let test_rip_timeout_withdraws () =
  let engine, (_, riba), _, w = rip_pair () in
  Engine.run ~until:(Time.sec 20) engine;
  Harness.set_wire_state w false;
  (* Scaled timeout is 18 s; after 25 s of silence the route must die. *)
  Engine.run ~until:(Time.sec 50) engine;
  check Alcotest.bool "route timed out" true
    (Rib.best riba (pfx "10.20.0.0/24") = None)

let test_rip_infinity_is_unreachable () =
  check Alcotest.int "rip infinity" 16 Rip.infinity_metric

(* --- Rchan -------------------------------------------------------------------- *)

type Vini_net.Packet.control += Test_msg of int

let test_rchan_delivers_in_order_under_loss () =
  let engine = Engine.create ~seed:5 () in
  let rng = Vini_std.Rng.create 17 in
  let received = ref [] in
  let b_chan = ref None in
  (* a -> b with 30% loss both ways. *)
  let lossy deliver msg ~size =
    ignore size;
    if Vini_std.Rng.float rng 1.0 > 0.3 then
      ignore (Engine.after engine (Time.ms 3) (fun () -> deliver msg))
  in
  let a_chan =
    lazy
      (Rchan.create ~engine
         ~send:(lossy (fun m -> ignore (Rchan.receive (Option.get !b_chan) m)))
         ~deliver:(fun _ -> ())
         ())
  in
  let b =
    Rchan.create ~engine
      ~send:(lossy (fun m -> ignore (Rchan.receive (Lazy.force a_chan) m)))
      ~deliver:(fun m ->
        match m with Test_msg i -> received := i :: !received | _ -> ())
      ()
  in
  b_chan := Some b;
  let a = Lazy.force a_chan in
  for i = 1 to 30 do
    Rchan.post a (Test_msg i) ~size:20
  done;
  Engine.run ~until:(Time.sec 120) engine;
  check Alcotest.(list int) "all messages, in order" (List.init 30 (fun i -> i + 1))
    (List.rev !received);
  check Alcotest.bool "retransmissions happened" true (Rchan.retransmissions a > 0)

let test_rchan_stop_clears () =
  let engine = Engine.create () in
  let chan =
    Rchan.create ~engine ~send:(fun _ ~size -> ignore size) ~deliver:(fun _ -> ()) ()
  in
  Rchan.post chan (Test_msg 1) ~size:10;
  Rchan.post chan (Test_msg 2) ~size:10;
  check Alcotest.int "in flight" 2 (Rchan.in_flight chan);
  Rchan.stop chan;
  check Alcotest.int "cleared" 0 (Rchan.in_flight chan)

(* --- BGP ----------------------------------------------------------------------- *)

(* Two speakers joined by a controllable lossless wire. *)
let bgp_pair ?(hold = Time.sec 9) ?export_a ?import_b () =
  let engine = Engine.create ~seed:3 () in
  let line_up = ref true in
  let mk_send deliver msg ~size =
    ignore size;
    if !line_up then
      ignore (Engine.after engine (Time.ms 5) (fun () -> deliver msg))
  in
  let a_cfg =
    {
      (Bgp.default_config ~asn:65001 ~rid:1 ~next_hop_self:(adr "192.0.2.1")
         ~originate:[ pfx "10.100.0.0/16" ])
      with
      Bgp.hold_time = hold;
      reconnect = Time.sec 3;
    }
  in
  let b_cfg =
    {
      (Bgp.default_config ~asn:65002 ~rid:2 ~next_hop_self:(adr "192.0.2.2")
         ~originate:[ pfx "10.200.0.0/16" ])
      with
      Bgp.hold_time = hold;
      reconnect = Time.sec 3;
    }
  in
  let rib_b = Rib.create ~fea:(fun _ -> ()) () in
  let a = Bgp.create ~engine ~config:a_cfg () in
  let b = Bgp.create ~engine ~config:b_cfg ~rib:rib_b () in
  let pa = ref 0 and pb = ref 0 in
  let a_to_b = mk_send (fun m -> Bgp.receive b ~peer:!pb m) in
  let b_to_a = mk_send (fun m -> Bgp.receive a ~peer:!pa m) in
  pa := Bgp.add_peer a ~name:"b" ~kind:`Ebgp ~send:a_to_b ?export:export_a ();
  pb := Bgp.add_peer b ~name:"a" ~kind:`Ebgp ~send:b_to_a ?import:import_b ();
  Bgp.start a;
  Bgp.start b;
  (engine, a, b, rib_b, line_up, (!pa, !pb))

let test_bgp_session_establishes_and_exchanges () =
  let engine, a, b, rib_b, _, (pa, pb) = bgp_pair () in
  Engine.run ~until:(Time.sec 10) engine;
  check Alcotest.bool "a established" true (Bgp.established a pa);
  check Alcotest.bool "b established" true (Bgp.established b pb);
  (match Bgp.best b (pfx "10.100.0.0/16") with
  | Some path ->
      check Alcotest.(list int) "as path" [ 65001 ] path.Bgp.as_path;
      check Alcotest.bool "next hop is a" true
        (Addr.equal path.Bgp.next_hop (adr "192.0.2.1"))
  | None -> Alcotest.fail "b must learn a's prefix");
  (* Learned eBGP routes land in the RIB. *)
  match Rib.best rib_b (pfx "10.100.0.0/16") with
  | Some r -> check Alcotest.bool "ebgp distance" true (r.Rib.proto = Rib.Ebgp)
  | None -> Alcotest.fail "rib must hold the bgp route"

let test_bgp_hold_timer_and_reconnect () =
  let engine, a, _, rib_b, line_up, (pa, _) = bgp_pair () in
  Engine.run ~until:(Time.sec 10) engine;
  line_up := false;
  (* Hold time is 9 s; the session must fall and the route must vanish. *)
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.bool "session down" false (Bgp.established a pa);
  check Alcotest.bool "route withdrawn" true
    (Rib.best rib_b (pfx "10.100.0.0/16") = None);
  check Alcotest.bool "resets counted" true (Bgp.session_resets a > 0);
  (* Heal the line: reconnect logic must re-establish and re-learn. *)
  line_up := true;
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.bool "re-established" true (Bgp.established a pa);
  check Alcotest.bool "route relearned" true
    (Rib.best rib_b (pfx "10.100.0.0/16") <> None)

let test_bgp_loop_rejection () =
  (* b announces a path already containing a's ASN; a must ignore it. *)
  let engine, a, b, _, _, _ = bgp_pair () in
  Engine.run ~until:(Time.sec 10) engine;
  ignore b;
  ignore engine;
  let looped = pfx "10.66.0.0/16" in
  (* Inject via b's origination with a fake as-path through a's ASN is not
     directly expressible; instead check a's own prefix never comes back. *)
  match Bgp.best a (pfx "10.100.0.0/16") with
  | Some path ->
      check Alcotest.(list int) "a's own prefix stays local" [] path.Bgp.as_path;
      check Alcotest.bool "not learned over the loop" true
        (Bgp.best a looped = None)
  | None -> Alcotest.fail "a must know its own prefix"

let test_bgp_export_policy () =
  let export_a p = not (Prefix.equal p (pfx "10.100.0.0/16")) in
  let engine, _, b, _, _, _ = bgp_pair ~export_a () in
  Engine.run ~until:(Time.sec 10) engine;
  check Alcotest.bool "filtered prefix not advertised" true
    (Bgp.best b (pfx "10.100.0.0/16") = None)

let test_bgp_import_policy () =
  let import_b _ _ = false in
  let engine, _, b, _, _, _ = bgp_pair ~import_b () in
  Engine.run ~until:(Time.sec 10) engine;
  check Alcotest.bool "import refused everything" true
    (Bgp.best b (pfx "10.100.0.0/16") = None);
  check Alcotest.bool "rejections counted" true (Bgp.import_rejections b 0 > 0)

let test_bgp_runtime_announce_withdraw () =
  let engine, a, b, _, _, _ = bgp_pair () in
  Engine.run ~until:(Time.sec 10) engine;
  let p = pfx "10.111.0.0/16" in
  Bgp.announce_prefix a p;
  Engine.run ~until:(Time.sec 15) engine;
  check Alcotest.bool "announced at runtime" true (Bgp.best b p <> None);
  Bgp.withdraw_prefix a p;
  Engine.run ~until:(Time.sec 20) engine;
  check Alcotest.bool "withdrawn at runtime" true (Bgp.best b p = None)

let test_bgp_decision_process () =
  let nh = adr "192.0.2.9" in
  let mk ?(lp = 100) ?(len = 1) ?(med = 0) () =
    {
      Bgp.origin_asn = 65009;
      as_path = List.init len (fun i -> 65100 + i);
      next_hop = nh;
      local_pref = lp;
      med;
    }
  in
  check Alcotest.bool "higher local-pref wins" true
    (Bgp.compare_paths (mk ~lp:200 ()) (mk ~lp:100 ~len:1 ()) < 0);
  check Alcotest.bool "shorter as-path wins" true
    (Bgp.compare_paths (mk ~len:1 ()) (mk ~len:3 ()) < 0);
  check Alcotest.bool "lower med wins" true
    (Bgp.compare_paths (mk ~med:1 ()) (mk ~med:9 ()) < 0);
  check Alcotest.int "ties are equal" 0 (Bgp.compare_paths (mk ()) (mk ()))

(* --- route traces ------------------------------------------------------------ *)

let test_route_trace_roundtrip () =
  let engine = Engine.create () in
  let rec_ = Vini_routing.Route_trace.recorder ~engine () in
  let rib = Rib.create ~fea:(Vini_routing.Route_trace.tap rec_ (fun _ -> ())) () in
  ignore (Engine.at engine (Time.sec 1) (fun () ->
      Rib.update rib ~proto:Rib.Ospf (pfx "10.3.0.0/16")
        (Some (route Rib.Ospf "10.1.0.2" 20))));
  ignore (Engine.at engine (Time.sec 2) (fun () ->
      Rib.update rib ~proto:Rib.Ospf (pfx "10.4.0.0/16")
        (Some (route Rib.Ospf "10.1.0.6" 30))));
  ignore (Engine.at engine (Time.sec 5) (fun () ->
      Rib.update rib ~proto:Rib.Ospf (pfx "10.3.0.0/16") None));
  Engine.run engine;
  let entries = Vini_routing.Route_trace.entries rec_ in
  check Alcotest.int "three changes recorded" 3 (List.length entries);
  (* Text round-trip preserves everything. *)
  let text = Vini_routing.Route_trace.to_string entries in
  match Vini_routing.Route_trace.of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok parsed ->
      check Alcotest.int "parsed all" 3 (List.length parsed);
      check Alcotest.string "reserialises identically" text
        (Vini_routing.Route_trace.to_string parsed)

let test_route_trace_playback () =
  let engine = Engine.create () in
  let rec_ = Vini_routing.Route_trace.recorder ~engine () in
  let rib = Rib.create ~fea:(Vini_routing.Route_trace.tap rec_ (fun _ -> ())) () in
  ignore (Engine.at engine (Time.sec 1) (fun () ->
      Rib.update rib ~proto:Rib.Ospf (pfx "10.3.0.0/16")
        (Some (route Rib.Ospf "10.1.0.2" 20))));
  ignore (Engine.at engine (Time.sec 11) (fun () ->
      Rib.update rib ~proto:Rib.Ospf (pfx "10.3.0.0/16") None));
  Engine.run engine;
  let entries = Vini_routing.Route_trace.entries rec_ in
  (* Replay at 2x into a fresh RIB, on a fresh engine. *)
  let engine2 = Engine.create () in
  let rib2 = Rib.create ~fea:(fun _ -> ()) () in
  Vini_routing.Route_trace.play ~engine:engine2 ~rib:rib2 ~speed:2.0 entries;
  Engine.run ~until:(Time.sec 1) engine2;
  (match Rib.best rib2 (pfx "10.3.0.0/16") with
  | Some r ->
      check Alcotest.bool "replayed as static" true (r.Rib.proto = Rib.Static);
      check Alcotest.int "metric preserved" 20 r.Rib.metric
  | None -> Alcotest.fail "route must be installed at replay start");
  (* The withdraw was 10 s after the install; at 2x it lands at +5 s. *)
  Engine.run ~until:(Time.sec 6) engine2;
  check Alcotest.bool "withdraw replayed (sped up)" true
    (Rib.best rib2 (pfx "10.3.0.0/16") = None)

let test_route_trace_rejects_garbage () =
  match Vini_routing.Route_trace.of_string "1.0 install nonsense" with
  | Ok _ -> Alcotest.fail "must reject"
  | Error _ -> ()

(* --- BGP multiplexer -------------------------------------------------------- *)

let mux_setup () =
  let engine = Engine.create ~seed:13 () in
  let send deliver msg ~size =
    ignore size;
    ignore (Engine.after engine (Time.ms 5) (fun () -> deliver msg))
  in
  (* The mux, an external speaker, and two experiment speakers. *)
  let mux =
    Bgp_mux.create ~engine ~asn:64512 ~rid:99 ~addr:(adr "198.32.154.1")
      ~vini_block:(pfx "10.128.0.0/9")
  in
  let ext_cfg =
    Bgp.default_config ~asn:701 ~rid:7 ~next_hop_self:(adr "198.32.200.1")
      ~originate:[ pfx "64.236.0.0/16" ]
  in
  let ext = Bgp.create ~engine ~config:ext_cfg () in
  let exp_cfg name rid prefixes =
    ignore name;
    Bgp.default_config ~asn:64512 ~rid ~next_hop_self:(adr "10.200.0.1")
      ~originate:(List.map pfx prefixes)
  in
  let e1 = Bgp.create ~engine ~config:(exp_cfg "e1" 11 [ "10.128.0.0/16"; "10.250.0.0/16" ]) () in
  let e2 = Bgp.create ~engine ~config:(exp_cfg "e2" 12 [ "10.129.0.0/16" ]) () in
  let ext_peer = ref 0 and m_ext = ref 0 in
  let e1_peer = ref 0 and m_e1 = ref 0 in
  let e2_peer = ref 0 and m_e2 = ref 0 in
  m_ext := Bgp_mux.attach_external mux ~name:"upstream"
      ~send:(send (fun m -> Bgp.receive ext ~peer:!ext_peer m));
  ext_peer := Bgp.add_peer ext ~name:"mux" ~kind:`Ebgp
      ~send:(send (fun m -> Bgp_mux.receive mux ~peer:!m_ext m)) ();
  m_e1 := Bgp_mux.attach_client mux
      ~spec:{
        Bgp_mux.client_name = "exp1";
        allowed = [ pfx "10.128.0.0/16" ];
        max_announce_per_sec = 10.0;
        burst = 5;
      }
      ~send:(send (fun m -> Bgp.receive e1 ~peer:!e1_peer m));
  e1_peer := Bgp.add_peer e1 ~name:"mux" ~kind:`Ibgp
      ~send:(send (fun m -> Bgp_mux.receive mux ~peer:!m_e1 m)) ();
  m_e2 := Bgp_mux.attach_client mux
      ~spec:{
        Bgp_mux.client_name = "exp2";
        allowed = [ pfx "10.129.0.0/16" ];
        max_announce_per_sec = 10.0;
        burst = 5;
      }
      ~send:(send (fun m -> Bgp.receive e2 ~peer:!e2_peer m));
  e2_peer := Bgp.add_peer e2 ~name:"mux" ~kind:`Ibgp
      ~send:(send (fun m -> Bgp_mux.receive mux ~peer:!m_e2 m)) ();
  Bgp_mux.start mux;
  Bgp.start ext;
  Bgp.start e1;
  Bgp.start e2;
  (engine, mux, ext, e1, e2)

let test_mux_relays_allowed_prefixes () =
  let engine, mux, ext, e1, e2 = mux_setup () in
  Engine.run ~until:(Time.sec 30) engine;
  (* The external speaker sees each experiment's allowed block... *)
  check Alcotest.bool "exp1 block reaches upstream" true
    (Bgp.best ext (pfx "10.128.0.0/16") <> None);
  check Alcotest.bool "exp2 block reaches upstream" true
    (Bgp.best ext (pfx "10.129.0.0/16") <> None);
  (* ...but not the block outside the VINI allocation. *)
  check Alcotest.bool "outside block filtered" true
    (Bgp.best ext (pfx "10.250.0.0/16") = None);
  check Alcotest.bool "violation counted" true
    (Bgp_mux.rejected mux ~client:"exp1" > 0);
  (* External routes are redistributed to every experiment. *)
  check Alcotest.bool "e1 learns internet route" true
    (Bgp.best e1 (pfx "64.236.0.0/16") <> None);
  check Alcotest.bool "e2 learns internet route" true
    (Bgp.best e2 (pfx "64.236.0.0/16") <> None);
  (* Experiments stay isolated from each other (iBGP relay rule). *)
  check Alcotest.bool "e2 does not see e1's block" true
    (Bgp.best e2 (pfx "10.128.0.0/16") = None)

let test_mux_refuses_outside_allocation () =
  Alcotest.check_raises "allocation outside block"
    (Invalid_argument "Bgp_mux.attach_client: allocation outside the VINI block")
    (fun () ->
      let engine = Engine.create () in
      let mux =
        Bgp_mux.create ~engine ~asn:64512 ~rid:1 ~addr:(adr "198.32.154.1")
          ~vini_block:(pfx "10.128.0.0/9")
      in
      ignore
        (Bgp_mux.attach_client mux
           ~spec:{
             Bgp_mux.client_name = "bad";
             allowed = [ pfx "11.0.0.0/16" ];
             max_announce_per_sec = 1.0;
             burst = 1;
           }
           ~send:(fun _ ~size -> ignore size)))

let test_mux_rate_limits () =
  let engine = Engine.create ~seed:19 () in
  let send deliver msg ~size =
    ignore size;
    ignore (Engine.after engine (Time.ms 2) (fun () -> deliver msg))
  in
  let mux =
    Bgp_mux.create ~engine ~asn:64512 ~rid:1 ~addr:(adr "198.32.154.1")
      ~vini_block:(pfx "10.128.0.0/9")
  in
  let cfg =
    Bgp.default_config ~asn:64512 ~rid:5 ~next_hop_self:(adr "10.200.0.1")
      ~originate:[]
  in
  let noisy = Bgp.create ~engine ~config:cfg () in
  let n_peer = ref 0 and m_peer = ref 0 in
  m_peer := Bgp_mux.attach_client mux
      ~spec:{
        Bgp_mux.client_name = "noisy";
        allowed = [ pfx "10.128.0.0/16" ];
        max_announce_per_sec = 1.0;
        burst = 2;
      }
      ~send:(send (fun m -> Bgp.receive noisy ~peer:!n_peer m));
  n_peer := Bgp.add_peer noisy ~name:"mux" ~kind:`Ibgp
      ~send:(send (fun m -> Bgp_mux.receive mux ~peer:!m_peer m)) ();
  Bgp_mux.start mux;
  Bgp.start noisy;
  Engine.run ~until:(Time.sec 5) engine;
  (* Blast 40 distinct /24 announcements in quick succession. *)
  for i = 0 to 39 do
    Bgp.announce_prefix noisy
      (Prefix.make (Addr.add (Prefix.network (pfx "10.128.0.0/16")) (i * 256)) 24)
  done;
  Engine.run ~until:(Time.sec 8) engine;
  check Alcotest.bool
    (Printf.sprintf "rate limiter engaged (%d)" (Bgp_mux.rate_limited mux ~client:"noisy"))
    true
    (Bgp_mux.rate_limited mux ~client:"noisy" > 0)

let suite =
  [
    Alcotest.test_case "rib admin distance" `Quick test_rib_admin_distance;
    Alcotest.test_case "rib fallback on withdraw" `Quick test_rib_fallback_on_withdraw;
    Alcotest.test_case "rib emits minimal fea changes" `Quick test_rib_fea_changes;
    Alcotest.test_case "rib replace_all" `Quick test_rib_replace_all;
    Alcotest.test_case "rib proto mismatch" `Quick test_rib_proto_mismatch_rejected;
    Alcotest.test_case "ospf adjacencies and routes" `Quick test_ospf_adjacencies_and_routes;
    Alcotest.test_case "ospf failure reroute+recovery" `Quick test_ospf_failure_reroute_and_recovery;
    Alcotest.test_case "ospf detection timing" `Quick test_ospf_detection_within_dead_interval;
    Alcotest.test_case "ospf spf hold-down" `Quick test_ospf_spf_holddown_coalesces;
    Alcotest.test_case "ospf stale lsa refuted" `Quick test_ospf_sequence_refutation;
    Alcotest.test_case "ospf reliable flooding under loss" `Quick
      test_ospf_reliable_flooding_under_loss;
    QCheck_alcotest.to_alcotest prop_ospf_matches_dijkstra;
    Alcotest.test_case "rip learns routes" `Quick test_rip_learns_routes;
    Alcotest.test_case "rip timeout withdraws" `Quick test_rip_timeout_withdraws;
    Alcotest.test_case "rip infinity constant" `Quick test_rip_infinity_is_unreachable;
    Alcotest.test_case "rchan ordered delivery under loss" `Quick test_rchan_delivers_in_order_under_loss;
    Alcotest.test_case "rchan stop clears" `Quick test_rchan_stop_clears;
    Alcotest.test_case "bgp establish+exchange" `Quick test_bgp_session_establishes_and_exchanges;
    Alcotest.test_case "bgp hold timer + reconnect" `Quick test_bgp_hold_timer_and_reconnect;
    Alcotest.test_case "bgp loop rejection" `Quick test_bgp_loop_rejection;
    Alcotest.test_case "bgp export policy" `Quick test_bgp_export_policy;
    Alcotest.test_case "bgp import policy" `Quick test_bgp_import_policy;
    Alcotest.test_case "bgp runtime announce/withdraw" `Quick test_bgp_runtime_announce_withdraw;
    Alcotest.test_case "bgp decision process" `Quick test_bgp_decision_process;
    Alcotest.test_case "route trace roundtrip" `Quick test_route_trace_roundtrip;
    Alcotest.test_case "route trace playback" `Quick test_route_trace_playback;
    Alcotest.test_case "route trace rejects garbage" `Quick
      test_route_trace_rejects_garbage;
    Alcotest.test_case "mux relays allowed prefixes" `Quick test_mux_relays_allowed_prefixes;
    Alcotest.test_case "mux refuses bad allocation" `Quick test_mux_refuses_outside_allocation;
    Alcotest.test_case "mux rate limits" `Quick test_mux_rate_limits;
  ]
