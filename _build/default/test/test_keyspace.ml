(* Tests for the flat key-based addressing scheme (§4.2.1's "new
   forwarding paradigm" demonstration). *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Prefix = Vini_net.Prefix
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Keyspace = Vini_overlay.Keyspace

let check = Alcotest.check

(* --- range covering ------------------------------------------------------- *)

let prop_cover_range_exact =
  QCheck.Test.make ~name:"cover_range is a disjoint exact cover" ~count:300
    QCheck.(pair (int_bound 1023) (int_bound 1023))
    (fun (a, b) ->
      let bits = 10 in
      let lo = min a b and hi = max a b in
      let blocks = Keyspace.cover_range ~bits ~lo ~hi in
      (* Every block is aligned and inside the range; blocks tile [lo,hi). *)
      let covered = Array.make 1024 0 in
      List.iter
        (fun (start, extra) ->
          let size = 1 lsl (bits - extra) in
          if start mod size <> 0 then failwith "unaligned";
          for i = start to start + size - 1 do
            covered.(i) <- covered.(i) + 1
          done)
        blocks;
      let ok = ref true in
      for i = 0 to 1023 do
        let expect = if i >= lo && i < hi then 1 else 0 in
        if covered.(i) <> expect then ok := false
      done;
      !ok)

let test_cover_range_minimal () =
  (* [0, 2^bits) is a single block; [1, 2) is one host. *)
  check
    Alcotest.(list (pair int int))
    "whole space" [ (0, 0) ]
    (Keyspace.cover_range ~bits:8 ~lo:0 ~hi:256);
  check
    Alcotest.(list (pair int int))
    "single key" [ (1, 8) ]
    (Keyspace.cover_range ~bits:8 ~lo:1 ~hi:2);
  check Alcotest.(list (pair int int)) "empty" []
    (Keyspace.cover_range ~bits:8 ~lo:5 ~hi:5)

(* --- a five-node overlay with the key space ------------------------------- *)

let make () =
  let engine = Engine.create ~seed:404 () in
  let link a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 2; loss = 0.0; weight = 1 }
  in
  let g =
    Graph.create
      ~names:[| "n0"; "n1"; "n2"; "n3"; "n4" |]
      ~links:[ link 0 1; link 1 2; link 2 3; link 3 4; link 4 0 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph:g ()
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "keys") ~vtopo:g
      ~embedding:Fun.id ()
  in
  let ks = Keyspace.create iias () in
  Iias.start iias;
  Engine.run ~until:(Time.sec 25) engine;
  (engine, iias, ks)

let test_arcs_partition_space () =
  let _, _, ks = make () in
  let arcs = Keyspace.arcs ks in
  check Alcotest.int "five arcs" 5 (List.length arcs);
  (* Sample keys across the space: each must fall in exactly one node's
     advertised prefixes, and that node must be owner_of_key. *)
  let rng = Vini_std.Rng.create 5 in
  for _ = 1 to 500 do
    let key = Vini_std.Rng.int rng (1 lsl Keyspace.key_bits ks) in
    let addr = Keyspace.addr_of_key ks key in
    let owners =
      List.filter
        (fun (_, prefixes) ->
          List.exists (fun p -> Prefix.contains p addr) prefixes)
        arcs
    in
    check Alcotest.int "exactly one owner" 1 (List.length owners);
    check Alcotest.int "owner agrees" (Keyspace.owner_of_key ks key)
      (fst (List.hd owners))
  done

let test_put_get_across_nodes () =
  let engine, _, ks = make () in
  let stored = ref (-1) in
  Keyspace.put ks ~from:0 ~name:"alpha.bin" ~size:4096
    ~on_ack:(fun ~stored_at -> stored := stored_at);
  Engine.run ~until:(Time.sec 30) engine;
  let owner = Keyspace.owner_of_key ks (Keyspace.key_of_name ks "alpha.bin") in
  check Alcotest.int "stored at the key's owner" owner !stored;
  check
    Alcotest.(list string)
    "owner's store holds it" [ "alpha.bin" ]
    (Keyspace.stored_names ks owner);
  (* Fetch from a different node. *)
  let result = ref None in
  Keyspace.get ks ~from:3 ~name:"alpha.bin"
    ~on_result:(fun ~found ~size ~owner -> result := Some (found, size, owner));
  Engine.run ~until:(Time.sec 35) engine;
  (match !result with
  | Some (true, 4096, o) -> check Alcotest.int "answered by owner" owner o
  | Some _ -> Alcotest.fail "wrong get result"
  | None -> Alcotest.fail "get never answered");
  (* Unknown names come back not-found (from their own owner). *)
  let missing = ref None in
  Keyspace.get ks ~from:1 ~name:"missing.bin"
    ~on_result:(fun ~found ~size:_ ~owner:_ -> missing := Some found);
  Engine.run ~until:(Time.sec 40) engine;
  check Alcotest.(option bool) "not found" (Some false) !missing

let test_many_names_spread () =
  let engine, _, ks = make () in
  let acked = ref 0 in
  for i = 0 to 39 do
    Keyspace.put ks ~from:(i mod 5)
      ~name:(Printf.sprintf "object-%d" i)
      ~size:(100 + i)
      ~on_ack:(fun ~stored_at:_ -> incr acked)
  done;
  Engine.run ~until:(Time.sec 40) engine;
  check Alcotest.int "all puts acked" 40 !acked;
  let total =
    List.init 5 (fun v -> List.length (Keyspace.stored_names ks v))
    |> List.fold_left ( + ) 0
  in
  check Alcotest.int "all objects stored exactly once" 40 total;
  (* Consistent hashing should not dump everything on one node. *)
  let nodes_used =
    List.init 5 (fun v -> Keyspace.stored_names ks v <> [])
    |> List.filter Fun.id |> List.length
  in
  check Alcotest.bool "spread across nodes" true (nodes_used >= 2)

let test_keyspace_rejects_bad_block () =
  let engine = Engine.create ~seed:405 () in
  let link a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 2; loss = 0.0; weight = 1 }
  in
  let g = Graph.create ~names:[| "a"; "b" |] ~links:[ link 0 1 ] in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph:g ()
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "k") ~vtopo:g ~embedding:Fun.id ()
  in
  Alcotest.check_raises "narrow block"
    (Invalid_argument "Keyspace.create: block narrower than /16") (fun () ->
      ignore (Keyspace.create iias ~block:(Prefix.of_string "10.255.255.0/24") ()))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_cover_range_exact;
    Alcotest.test_case "cover_range minimal cases" `Quick test_cover_range_minimal;
    Alcotest.test_case "arcs partition the key space" `Quick
      test_arcs_partition_space;
    Alcotest.test_case "put/get across nodes" `Quick test_put_get_across_nodes;
    Alcotest.test_case "many names spread over owners" `Quick
      test_many_names_spread;
    Alcotest.test_case "rejects bad block" `Quick test_keyspace_rejects_bad_block;
  ]
