test/test_std.ml: Alcotest Array Float Fun Gen Int List Option Printf QCheck QCheck_alcotest Vini_std
