test/test_core.ml: Alcotest Array List Result Vini_core Vini_measure Vini_net Vini_overlay Vini_phys Vini_sim Vini_topo
