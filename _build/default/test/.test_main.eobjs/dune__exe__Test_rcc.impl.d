test/test_rcc.ml: Alcotest Int64 List QCheck QCheck_alcotest String Vini_rcc Vini_sim Vini_std Vini_topo
