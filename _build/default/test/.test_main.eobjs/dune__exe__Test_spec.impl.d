test/test_spec.ml: Alcotest Buffer Int64 List Printf QCheck QCheck_alcotest String Vini_core Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
