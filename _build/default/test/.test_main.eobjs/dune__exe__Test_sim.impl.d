test/test_sim.ml: Alcotest Fun List Printf Vini_sim Vini_std
