test/test_measure.ml: Alcotest Harness List Printf Vini_measure Vini_phys Vini_sim Vini_std Vini_transport
