test/harness.ml: Lazy Vini_net Vini_phys Vini_routing Vini_sim Vini_std
