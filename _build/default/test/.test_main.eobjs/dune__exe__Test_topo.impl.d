test/test_topo.ml: Alcotest Array List Option QCheck QCheck_alcotest Vini_sim Vini_std Vini_topo
