test/test_net.ml: Alcotest Bytes Char Fmt Gen List QCheck QCheck_alcotest String Vini_net
