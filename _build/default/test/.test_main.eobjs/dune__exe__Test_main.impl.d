test/test_main.ml: Alcotest Test_click Test_core Test_keyspace Test_measure Test_net Test_overlay Test_phys Test_rcc Test_repro Test_routing Test_sim Test_spec Test_std Test_topo Test_transport
