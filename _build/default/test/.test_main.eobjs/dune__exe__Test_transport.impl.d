test/test_transport.ml: Alcotest Harness Hashtbl Option Printf QCheck QCheck_alcotest Vini_net Vini_phys Vini_sim Vini_std Vini_transport
