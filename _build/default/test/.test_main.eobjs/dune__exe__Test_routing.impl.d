test/test_routing.ml: Alcotest Array Harness Lazy List Option Printf QCheck QCheck_alcotest Vini_net Vini_routing Vini_sim Vini_std Vini_topo
