test/test_click.ml: Alcotest List Option Printf QCheck QCheck_alcotest Vini_click Vini_net Vini_sim Vini_std
