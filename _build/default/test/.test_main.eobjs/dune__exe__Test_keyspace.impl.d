test/test_keyspace.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Vini_net Vini_overlay Vini_phys Vini_sim Vini_std Vini_topo
