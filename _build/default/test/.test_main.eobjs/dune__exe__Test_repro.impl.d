test/test_repro.ml: Alcotest Float List Printf Vini_repro
