test/test_phys.ml: Alcotest Float List Printf Vini_net Vini_phys Vini_sim Vini_std Vini_topo
