test/test_overlay.ml: Alcotest Array Fun Hashtbl List Option Printf Vini_measure Vini_net Vini_overlay Vini_phys Vini_routing Vini_sim Vini_std Vini_topo Vini_transport
