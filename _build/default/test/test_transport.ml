(* Tests for TCP Reno and UDP CBR flows over a direct stack pair with
   controllable delay and loss. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Tcp = Vini_transport.Tcp
module Udp_flow = Vini_transport.Udp_flow
module Ipstack = Vini_phys.Ipstack

let check = Alcotest.check

let transfer ?(loss = 0.0) ?(delay = Time.ms 5) ?(seed = 1) ?(rwnd = 64 * 1024)
    ~bytes ~run_for () =
  let engine = Engine.create ~seed () in
  let client, server = Harness.stack_pair ~engine ~delay ~loss ~seed () in
  let delivered = ref 0 and chunks = ref 0 and closed = ref false in
  Tcp.listen ~stack:server ~port:5001 ~rwnd
    ~on_accept:(fun conn ->
      Tcp.on_deliver conn (fun n ->
          delivered := !delivered + n;
          incr chunks);
      Tcp.on_closed conn (fun () -> closed := true))
    ();
  let conn =
    Tcp.connect ~stack:client ~dst:(Ipstack.local_addr server) ~dst_port:5001
      ~rwnd ()
  in
  Tcp.send conn bytes;
  Tcp.close conn;
  Engine.run ~until:run_for engine;
  (conn, !delivered, !closed, engine)

let test_tcp_basic_transfer () =
  let conn, delivered, closed, _ =
    transfer ~bytes:100_000 ~run_for:(Time.sec 30) ()
  in
  check Alcotest.int "all bytes delivered" 100_000 delivered;
  check Alcotest.bool "receiver saw fin" true closed;
  let st = Tcp.stats conn in
  check Alcotest.string "sender closed" "closed" st.Tcp.state;
  check Alcotest.int "no retransmits on clean path" 0 st.Tcp.retransmits

let test_tcp_empty_transfer () =
  let _, delivered, closed, _ = transfer ~bytes:0 ~run_for:(Time.sec 10) () in
  check Alcotest.int "nothing delivered" 0 delivered;
  check Alcotest.bool "still closes" true closed

let test_tcp_delivery_under_loss () =
  (* 10% loss each way: retransmission must recover everything, in order. *)
  let conn, delivered, closed, _ =
    transfer ~loss:0.1 ~seed:7 ~bytes:200_000 ~run_for:(Time.sec 300) ()
  in
  check Alcotest.int "all bytes despite loss" 200_000 delivered;
  check Alcotest.bool "closed" true closed;
  check Alcotest.bool "recovered via retransmits" true
    ((Tcp.stats conn).Tcp.retransmits > 0)

let test_tcp_rwnd_limits_throughput () =
  (* window/RTT: 16 KB over 100 ms RTT ~ 1.3 Mb/s; a 2 s transfer moves
     ~325 KB.  Generous bounds, but far below an unlimited run. *)
  let engine = Engine.create ~seed:3 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 50) () in
  let delivered = ref 0 in
  Tcp.listen ~stack:server ~port:5001 ~rwnd:(16 * 1024)
    ~on_accept:(fun conn -> Tcp.on_deliver conn (fun n -> delivered := !delivered + n))
    ();
  let conn =
    Tcp.connect ~stack:client ~dst:(Ipstack.local_addr server) ~dst_port:5001
      ~rwnd:(16 * 1024) ()
  in
  Tcp.send_forever conn;
  Engine.run ~until:(Time.sec 10) engine;
  let mbps = float_of_int (!delivered * 8) /. 10.0 /. 1e6 in
  check Alcotest.bool
    (Printf.sprintf "window-limited (%.2f Mb/s)" mbps)
    true
    (mbps > 0.8 && mbps < 1.8)

let test_tcp_srtt_tracks_path () =
  let conn, _, _, _ =
    transfer ~delay:(Time.ms 40) ~bytes:200_000 ~run_for:(Time.sec 60) ()
  in
  let srtt = (Tcp.stats conn).Tcp.srtt in
  check Alcotest.bool
    (Printf.sprintf "srtt ~80 ms (%.1f ms)" (srtt *. 1e3))
    true
    (srtt > 0.075 && srtt < 0.13)

let test_tcp_outage_timeouts_and_recovery () =
  let engine = Engine.create ~seed:11 () in
  let drop = ref false in
  let rng = Vini_std.Rng.create 4 in
  ignore rng;
  (* A pipe with a controllable blackout. *)
  let a = ref None and b = ref None in
  let mk dst =
    fun pkt ->
      if not !drop then
        ignore
          (Engine.after engine (Time.ms 10) (fun () ->
               Option.iter (fun s -> Ipstack.deliver s pkt) !dst))
  in
  let sa =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.1")
      ~tx:(mk b) ()
  in
  let sb =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.2")
      ~tx:(mk a) ()
  in
  a := Some sa;
  b := Some sb;
  let delivered = ref 0 in
  Tcp.listen ~stack:sb ~port:5001
    ~on_accept:(fun conn -> Tcp.on_deliver conn (fun n -> delivered := !delivered + n))
    ();
  let conn =
    Tcp.connect ~stack:sa ~dst:(Ipstack.local_addr sb) ~dst_port:5001 ()
  in
  Tcp.send_forever conn;
  ignore (Engine.at engine (Time.sec 5) (fun () -> drop := true));
  ignore (Engine.at engine (Time.sec 15) (fun () -> drop := false));
  Engine.run ~until:(Time.sec 8) engine;
  let at_8s = !delivered in
  Engine.run ~until:(Time.sec 15) engine;
  check Alcotest.int "stalled during outage" at_8s !delivered;
  let st = Tcp.stats conn in
  check Alcotest.bool "rto fired" true (st.Tcp.timeouts > 0);
  check Alcotest.bool "cwnd collapsed" true (st.Tcp.cwnd <= 2 * Tcp.default_mss);
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.bool "resumed after outage" true (!delivered > at_8s + 100_000)

let test_tcp_parallel_streams_share () =
  let engine = Engine.create ~seed:13 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 10) () in
  let per_conn = Hashtbl.create 8 in
  Tcp.listen ~stack:server ~port:5001
    ~on_accept:(fun conn ->
      let id = Hashtbl.length per_conn in
      Hashtbl.replace per_conn id 0;
      Tcp.on_deliver conn (fun n ->
          Hashtbl.replace per_conn id (Hashtbl.find per_conn id + n)))
    ();
  for _ = 1 to 5 do
    let conn =
      Tcp.connect ~stack:client ~dst:(Ipstack.local_addr server) ~dst_port:5001 ()
    in
    Tcp.send_forever conn
  done;
  Engine.run ~until:(Time.sec 10) engine;
  check Alcotest.int "five connections accepted" 5 (Hashtbl.length per_conn);
  Hashtbl.iter
    (fun id bytes ->
      check Alcotest.bool (Printf.sprintf "conn %d progressed" id) true
        (bytes > 100_000))
    per_conn

let test_tcp_connect_retries_lost_syn () =
  let engine = Engine.create ~seed:17 () in
  (* Drop the first two packets outright, then behave. *)
  let count = ref 0 in
  let a = ref None and b = ref None in
  let mk dst pkt =
    incr count;
    if !count > 2 then
      ignore
        (Engine.after engine (Time.ms 5) (fun () ->
             Option.iter (fun s -> Ipstack.deliver s pkt) !dst))
  in
  let sa =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.1")
      ~tx:(mk b) ()
  in
  let sb =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.2")
      ~tx:(mk a) ()
  in
  a := Some sa;
  b := Some sb;
  let established = ref false in
  Tcp.listen ~stack:sb ~port:5001 ~on_accept:(fun _ -> ()) ();
  let conn =
    Tcp.connect ~stack:sa ~dst:(Ipstack.local_addr sb) ~dst_port:5001 ()
  in
  Tcp.on_established conn (fun () -> established := true);
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.bool "established after syn loss" true !established

(* Property: any transfer size is delivered exactly, under loss. *)
let prop_tcp_exact_delivery =
  QCheck.Test.make ~name:"tcp delivers exact byte counts under loss" ~count:15
    QCheck.(pair (int_range 1 120_000) (int_bound 1000))
    (fun (bytes, seed) ->
      let _, delivered, closed, _ =
        transfer ~loss:0.05 ~seed ~bytes ~run_for:(Time.sec 600) ()
      in
      delivered = bytes && closed)

let test_tcp_survives_reordering () =
  (* A pipe that delays a random subset of packets by an extra 30 ms:
     heavy reordering, zero loss.  Delivery must stay exact and in order. *)
  let engine = Engine.create ~seed:31 () in
  let rng = Vini_std.Rng.create 8 in
  let a = ref None and b = ref None in
  let mk dst pkt =
    let extra = if Vini_std.Rng.float rng 1.0 < 0.3 then Time.ms 30 else Time.zero in
    ignore
      (Engine.after engine (Time.add (Time.ms 5) extra) (fun () ->
           Option.iter (fun s -> Ipstack.deliver s pkt) !dst))
  in
  let sa =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.1")
      ~tx:(mk b) ()
  in
  let sb =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.2")
      ~tx:(mk a) ()
  in
  a := Some sa;
  b := Some sb;
  let delivered = ref 0 and closed = ref false in
  Tcp.listen ~stack:sb ~port:5001
    ~on_accept:(fun conn ->
      Tcp.on_deliver conn (fun n -> delivered := !delivered + n);
      Tcp.on_closed conn (fun () -> closed := true))
    ();
  let conn =
    Tcp.connect ~stack:sa ~dst:(Ipstack.local_addr sb) ~dst_port:5001 ()
  in
  Tcp.send conn 150_000;
  Tcp.close conn;
  Engine.run ~until:(Time.sec 120) engine;
  check Alcotest.int "exact delivery despite reordering" 150_000 !delivered;
  check Alcotest.bool "closed" true !closed

let test_tcp_survives_duplication () =
  (* A pipe that duplicates 20% of packets.  The receiver must not
     double-deliver bytes. *)
  let engine = Engine.create ~seed:37 () in
  let rng = Vini_std.Rng.create 9 in
  let a = ref None and b = ref None in
  let mk dst pkt =
    let deliver () =
      ignore
        (Engine.after engine (Time.ms 5) (fun () ->
             Option.iter (fun s -> Ipstack.deliver s pkt) !dst))
    in
    deliver ();
    if Vini_std.Rng.float rng 1.0 < 0.2 then deliver ()
  in
  let sa =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.1")
      ~tx:(mk b) ()
  in
  let sb =
    Ipstack.create ~engine ~local_addr:(Vini_net.Addr.of_string "192.0.2.2")
      ~tx:(mk a) ()
  in
  a := Some sa;
  b := Some sb;
  let delivered = ref 0 in
  Tcp.listen ~stack:sb ~port:5001
    ~on_accept:(fun conn -> Tcp.on_deliver conn (fun n -> delivered := !delivered + n))
    ();
  let conn =
    Tcp.connect ~stack:sa ~dst:(Ipstack.local_addr sb) ~dst_port:5001 ()
  in
  Tcp.send conn 150_000;
  Tcp.close conn;
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.int "no double delivery" 150_000 !delivered

(* --- UDP flows ------------------------------------------------------------- *)

let test_udp_cbr_rate_and_accounting () =
  let engine = Engine.create ~seed:23 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 5) () in
  let recv = Udp_flow.receiver ~stack:server ~port:6001 () in
  let snd =
    Udp_flow.sender ~stack:client ~dst:(Ipstack.local_addr server)
      ~dst_port:6001 ~rate_bps:1e6 ~duration:(Time.sec 5) ()
  in
  Engine.run ~until:(Time.sec 7) engine;
  let st = Udp_flow.receiver_stats recv in
  check Alcotest.bool "sender stopped" false (Udp_flow.sender_running snd);
  check Alcotest.int "no loss on clean path" 0 st.Udp_flow.lost;
  check Alcotest.int "received all sent" (Udp_flow.sent snd) st.Udp_flow.received;
  (* 1 Mb/s of 1458-byte datagrams for 5 s ~ 428 packets. *)
  check Alcotest.bool
    (Printf.sprintf "rate respected (%d pkts)" st.Udp_flow.received)
    true
    (st.Udp_flow.received > 380 && st.Udp_flow.received < 480)

let test_udp_loss_counting () =
  let engine = Engine.create ~seed:29 () in
  let client, server = Harness.stack_pair ~engine ~delay:(Time.ms 5) ~loss:0.2 () in
  let recv = Udp_flow.receiver ~stack:server ~port:6001 () in
  ignore
    (Udp_flow.sender ~stack:client ~dst:(Ipstack.local_addr server)
       ~dst_port:6001 ~rate_bps:2e6 ~duration:(Time.sec 5) ());
  Engine.run ~until:(Time.sec 7) engine;
  let st = Udp_flow.receiver_stats recv in
  check Alcotest.bool
    (Printf.sprintf "~20%% loss seen (%.1f%%)" st.Udp_flow.loss_pct)
    true
    (st.Udp_flow.loss_pct > 12.0 && st.Udp_flow.loss_pct < 28.0)

let test_udp_sender_validation () =
  let engine = Engine.create () in
  let client, server = Harness.stack_pair ~engine () in
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Udp_flow.sender: rate must be positive") (fun () ->
      ignore
        (Udp_flow.sender ~stack:client ~dst:(Ipstack.local_addr server)
           ~dst_port:6001 ~rate_bps:0.0 ~duration:(Time.sec 1) ()))

let suite =
  [
    Alcotest.test_case "tcp basic transfer" `Quick test_tcp_basic_transfer;
    Alcotest.test_case "tcp empty transfer" `Quick test_tcp_empty_transfer;
    Alcotest.test_case "tcp delivery under loss" `Quick test_tcp_delivery_under_loss;
    Alcotest.test_case "tcp rwnd limits throughput" `Quick test_tcp_rwnd_limits_throughput;
    Alcotest.test_case "tcp srtt tracks path" `Quick test_tcp_srtt_tracks_path;
    Alcotest.test_case "tcp outage + slow-start restart" `Quick test_tcp_outage_timeouts_and_recovery;
    Alcotest.test_case "tcp parallel streams" `Quick test_tcp_parallel_streams_share;
    Alcotest.test_case "tcp retries lost syn" `Quick test_tcp_connect_retries_lost_syn;
    Alcotest.test_case "tcp survives reordering" `Quick test_tcp_survives_reordering;
    Alcotest.test_case "tcp survives duplication" `Quick test_tcp_survives_duplication;
    QCheck_alcotest.to_alcotest prop_tcp_exact_delivery;
    Alcotest.test_case "udp cbr rate+accounting" `Quick test_udp_cbr_rate_and_accounting;
    Alcotest.test_case "udp loss counting" `Quick test_udp_loss_counting;
    Alcotest.test_case "udp sender validation" `Quick test_udp_sender_validation;
  ]
