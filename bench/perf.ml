(* Standalone entry point for the hot-path performance suite — what the
   CI bench-regression job runs (the full harness in main.ml also invokes
   the suite at the end of its run). *)

let () = Perf_suite.run ()
