(* The evaluation harness: regenerates every table and figure of the
   paper's Section 5, printing paper-reported values next to measured
   ones, then runs Bechamel microbenchmarks of the core data structures.

   Environment knobs:
     VINI_RUNS        repetitions for the throughput tables (default 3;
                      the paper used 10)
     VINI_SECONDS     measurement window per run (default 5)
     VINI_SKIP_ABLATIONS  set to skip the ablation studies
     VINI_SKIP_MICRO      set to skip the Bechamel section
     VINI_SKIP_PERF       set to skip the hot-path perf suite
                          (see perf_suite.ml for its own knobs). *)

open Vini_repro
module Report = Vini_measure.Report

let runs =
  match Sys.getenv_opt "VINI_RUNS" with Some s -> int_of_string s | None -> 3

let duration_s =
  match Sys.getenv_opt "VINI_SECONDS" with
  | Some s -> int_of_string s
  | None -> 5

let f = Report.fmt_f

(* ---- Table 2: TCP throughput on DETER --------------------------------- *)

let table2 () =
  let net = Deter.network_tcp ~runs ~duration_s () in
  let iias = Deter.iias_tcp ~runs ~duration_s () in
  Report.table ~title:"Table 2: TCP throughput test on DETER testbed"
    ~header:
      [ ""; "paper Mb/s"; "ours Mb/s"; "paper std"; "ours std"; "paper CPU%";
        "ours CPU%" ]
    ~rows:
      [
        [ "Network"; "940"; f net.Deter.mbps_mean; "0"; f net.mbps_stddev;
          "48"; f net.fwdr_cpu_pct ];
        [ "IIAS"; "195"; f iias.Deter.mbps_mean; "0.843"; f iias.mbps_stddev;
          "99"; f iias.fwdr_cpu_pct ];
      ]

(* ---- Table 3: ping on DETER ------------------------------------------- *)

let table3 () =
  let net = Deter.network_ping () in
  let iias = Deter.iias_ping () in
  let row name (pmin, pavg, pmax, pmdev) (r : Deter.ping_result) =
    [ name; pmin; f r.Deter.p_min; pavg; f r.p_avg; pmax; f r.p_max; pmdev;
      f r.p_mdev ]
  in
  Report.table ~title:"Table 3: ping results on DETER (ms)"
    ~header:
      [ ""; "p.min"; "min"; "p.avg"; "avg"; "p.max"; "max"; "p.mdev"; "mdev" ]
    ~rows:
      [
        row "Network" ("0.193", "0.414", "0.593", "0.089") net;
        row "IIAS" ("0.269", "0.547", "0.783", "0.080") iias;
      ]

(* ---- Table 4: TCP throughput on PlanetLab ----------------------------- *)

let table4 () =
  let r c = Planetlab.tcp c ~runs ~duration_s () in
  let net = r Planetlab.Network in
  let dflt = r Planetlab.Iias_default in
  let plv = r Planetlab.Iias_plvini in
  let row name paper (x : Planetlab.tcp_result) (pstd, pcpu) =
    [ name; paper; f x.Planetlab.mbps_mean; pstd; f x.mbps_stddev; pcpu;
      (if Float.is_nan x.cpu_pct then "n/a" else f x.cpu_pct) ]
  in
  Report.table ~title:"Table 4: TCP throughput test on PlanetLab"
    ~header:
      [ ""; "paper Mb/s"; "ours Mb/s"; "paper std"; "ours std"; "paper CPU%";
        "ours CPU%" ]
    ~rows:
      [
        row "Network" "90.8" net ("0.53", "n/a");
        row "IIAS on PlanetLab" "22.5" dflt ("4.01", "13");
        row "IIAS on PL-VINI" "86.2" plv ("0.64", "40");
      ]

(* ---- Table 5: ping on PlanetLab --------------------------------------- *)

let table5 () =
  let r c = Planetlab.ping c () in
  let net = r Planetlab.Network in
  let dflt = r Planetlab.Iias_default in
  let plv = r Planetlab.Iias_plvini in
  let row name (pmin, pavg, pmax, pmdev) (x : Planetlab.ping_result) =
    [ name; pmin; f x.Planetlab.p_min; pavg; f x.p_avg; pmax; f x.p_max;
      pmdev; f x.p_mdev ]
  in
  Report.table ~title:"Table 5: ping results on PlanetLab (ms)"
    ~header:
      [ ""; "p.min"; "min"; "p.avg"; "avg"; "p.max"; "max"; "p.mdev"; "mdev" ]
    ~rows:
      [
        row "Network" ("24.4", "24.5", "28.2", "0.2") net;
        row "IIAS on PlanetLab" ("24.7", "27.7", "80.9", "4.8") dflt;
        row "IIAS on PL-VINI" ("24.7", "25.1", "28.6", "0.38") plv;
      ]

(* ---- Table 6: jitter on PlanetLab ------------------------------------- *)

let table6 () =
  let r c = Planetlab.jitter c ~duration_s:10 () in
  let net = r Planetlab.Network in
  let dflt = r Planetlab.Iias_default in
  let plv = r Planetlab.Iias_plvini in
  let row name paper (x : Planetlab.jitter_result) pstd =
    [ name; paper; f x.Planetlab.jitter_mean_ms; pstd; f x.jitter_stddev_ms ]
  in
  Report.table ~title:"Table 6: jitter on PlanetLab (ms)"
    ~header:[ ""; "paper mean"; "ours mean"; "paper std"; "ours std" ]
    ~rows:
      [
        row "Network" "0.27" net "0.16";
        row "IIAS on PlanetLab" "2.4" dflt "3.7";
        row "IIAS on PL-VINI" "1.3" plv "0.9";
      ]

(* ---- Figure 6: packet loss vs UDP rate -------------------------------- *)

let fig6 () =
  let sweep c = Planetlab.loss_sweep c ~duration_s () in
  let net = sweep Planetlab.Network in
  let dflt = sweep Planetlab.Iias_default in
  let plv = sweep Planetlab.Iias_plvini in
  Report.table
    ~title:
      "Figure 6: packet loss vs UDP rate (paper: (a) default share climbs \
       to ~14%, (b) PL-VINI stays near the network's ~0%)"
    ~header:[ "rate Mb/s"; "Network %"; "default share %"; "PL-VINI %" ]
    ~rows:
      (List.map2
         (fun (rate, ln) ((_, ld), (_, lp)) -> [ f rate; f ln; f ld; f lp ])
         net
         (List.combine dflt plv));
  Report.series ~title:"Figure 6(a): IIAS loss, default share" ~x_label:"Mb/s"
    ~y_label:"loss %" dflt

(* ---- Figure 7: the Abilene mirror ------------------------------------- *)

let fig7 () =
  let g = Abilene.topology () in
  Printf.printf "\n== Figure 7: Abilene topology (mirrored via rcc) ==\n";
  Format.printf "%a@?" Vini_topo.Graph.pp g;
  let primary, backup = Abilene.expected_paths () in
  Printf.printf "default route : %s\n" (String.concat " > " primary);
  Printf.printf "after failure : %s\n" (String.concat " > " backup)

(* ---- Figure 8: OSPF convergence seen by ping -------------------------- *)

let fig8 () =
  let r = Abilene.fig8_run () in
  Report.table
    ~title:
      "Figure 8: ping D.C.->Seattle through Denver-KC failure (fail @10s, \
       restore @34s)"
    ~header:[ ""; "paper"; "ours" ]
    ~rows:
      [
        [ "RTT before failure (ms)"; "76"; f r.Abilene.rtt_before ];
        [ "RTT on backup path (ms)"; "93"; f r.rtt_after ];
        [ "detection delay (s)"; "~7"; f r.detect_delay ];
        [ "RTT after restore (ms)"; "76"; f r.restore_rtt ];
      ];
  Report.series ~title:"Figure 8: RTT vs time" ~x_label:"s" ~y_label:"ms"
    r.Abilene.rtt_series

(* ---- Figure 9: TCP through the convergence event ---------------------- *)

let fig9 () =
  let r = Abilene.fig9_run () in
  Report.table
    ~title:"Figure 9: TCP (16KB window) D.C.->Seattle through the failure"
    ~header:[ ""; "paper"; "ours" ]
    ~rows:
      [
        [ "total transferred (MB)"; "~12"; f r.Abilene.total_mb ];
        [ "stall starts (s)"; "10"; f r.stall_start ];
        [ "transfer resumes (s)"; "18"; f r.stall_end ];
      ];
  Report.series ~title:"Figure 9(a): MB transferred vs time" ~x_label:"s"
    ~y_label:"MB" r.Abilene.cumulative;
  let zoom =
    List.filter
      (fun (t, _) ->
        t >= r.Abilene.stall_end -. 0.5 && t <= r.Abilene.stall_end +. 2.0)
      r.Abilene.positions
  in
  Report.series
    ~title:"Figure 9(b): slow-start restart (stream position at resume)"
    ~x_label:"s" ~y_label:"MB in stream" zoom

let upcalls () =
  let u1, u2 = Abilene.upcall_demo () in
  Report.table
    ~title:"Section 6.1: physical-failure upcalls to concurrent experiments"
    ~header:[ "experiment"; "upcalls (fail+restore)" ]
    ~rows:[ [ "exp1"; string_of_int u1 ]; [ "exp2"; string_of_int u2 ] ]

(* ---- Ablations (design-choice decompositions, see DESIGN.md) ---------- *)

let ablations () =
  Report.table
    ~title:
      "Ablation A: which PL-VINI scheduler knob does the work? (Table 4/5 \
       decomposed)"
    ~header:[ "slice treatment"; "TCP Mb/s"; "ping avg ms"; "ping mdev ms" ]
    ~rows:
      (List.map
         (fun (r : Ablation.knob_result) ->
           [ r.Ablation.label; f r.mbps; f r.ping_avg_ms; f r.ping_mdev_ms ])
         (Ablation.scheduler_knobs ~duration_s ()));
  Report.table
    ~title:
      "Ablation B: Figure 6's loss is socket-buffer overflow (35 Mb/s CBR, \
       default share)"
    ~header:[ "rcvbuf KB"; "loss %" ]
    ~rows:
      (List.map
         (fun (kb, loss) -> [ string_of_int kb; f loss ])
         (Ablation.buffer_sweep ~duration_s ()));
  Report.table
    ~title:
      "Isolation study (§3.4): a measuring experiment vs a 60 Mb/s noisy \
       neighbour on shared nodes"
    ~header:[ "isolation"; "TCP Mb/s"; "ping avg ms"; "ping mdev ms" ]
    ~rows:
      (List.map
         (fun (r : Ablation.knob_result) ->
           [ r.Ablation.label; f r.mbps; f r.ping_avg_ms; f r.ping_mdev_ms ])
         (Ablation.isolation_matrix ()));
  Report.table
    ~title:"Ablation C: failure detection tracks the OSPF dead interval"
    ~header:[ "hello s"; "dead s"; "detection s" ]
    ~rows:
      (List.map
         (fun (h, d, det) -> [ string_of_int h; string_of_int d; f det ])
         (Ablation.timer_sweep ()))

(* ---- Observability: machine-readable metrics for the CI artifact ------ *)

let observability () =
  let module Export = Vini_measure.Export in
  let duration_s = max 1 (min duration_s 5) in
  let doc, mbps = Deter.observability_run ~duration_s () in
  let path = "BENCH_METRICS.json" in
  Export.write ~path doc;
  let count_of name =
    let ( >>= ) o f = Option.bind o f in
    Export.member "histograms" doc >>= Export.to_list
    >>= List.find_opt (fun h ->
            Export.member "name" h >>= Export.to_str |> fun n -> n = Some name)
    >>= Export.member "count" >>= Export.to_float
    |> Option.value ~default:0.0
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Observability: instrumented DETER IIAS TCP run (%.1f Mb/s) -> %s"
         mbps path)
    ~header:[ "histogram"; "samples" ]
    ~rows:
      (List.map
         (fun n -> [ n; Printf.sprintf "%.0f" (count_of n) ])
         [
           "engine.horizon_s"; "engine.callback_s"; "phys.fwdr.wake_s";
           "tcp.src.cwnd_bytes";
         ])

(* ---- Bechamel microbenchmarks ----------------------------------------- *)

let microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  let fib =
    let t = Vini_click.Fib.create () in
    let rng = Vini_std.Rng.create 1 in
    for _ = 1 to 1000 do
      let a = Vini_net.Addr.of_int (Vini_std.Rng.int rng 0xFFFFFFFF) in
      Vini_click.Fib.add t (Vini_net.Prefix.make a 24) a
    done;
    let probe = Vini_net.Addr.of_string "10.1.2.3" in
    Test.make ~name:"fib-lpm-lookup-1k"
      (Staged.stage (fun () -> ignore (Vini_click.Fib.lookup t probe)))
  in
  let heap =
    Test.make ~name:"heap-push-pop-64"
      (Staged.stage (fun () ->
           let h = Vini_std.Heap.create ~cmp:Int.compare in
           for i = 0 to 63 do
             Vini_std.Heap.push h ((i * 7919) mod 101)
           done;
           while not (Vini_std.Heap.is_empty h) do
             ignore (Vini_std.Heap.pop h)
           done))
  in
  let spf =
    let g = Abilene.topology () in
    Test.make ~name:"dijkstra-abilene"
      (Staged.stage (fun () -> ignore (Vini_topo.Graph.dijkstra g 0)))
  in
  let engine_bench =
    Test.make ~name:"engine-1k-events"
      (Staged.stage (fun () ->
           let e = Vini_sim.Engine.create () in
           for i = 1 to 1000 do
             ignore (Vini_sim.Engine.at e (Vini_sim.Time.us i) (fun () -> ()))
           done;
           Vini_sim.Engine.run e))
  in
  let checksum =
    let buf = Bytes.make 1430 'x' in
    Test.make ~name:"inet-checksum-1430B"
      (Staged.stage (fun () -> ignore (Vini_net.Wire.checksum buf)))
  in
  let tests =
    Test.make_grouped ~name:"vini" ~fmt:"%s/%s"
      [ fib; heap; spf; engine_bench; checksum ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Microbenchmarks (ns/op, OLS on monotonic clock) ==\n";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-28s %12.1f\n" name est
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    results

let () =
  Printf.printf
    "VINI reproduction: all Section 5 tables and figures (runs=%d, \
     window=%ds)\n%!"
    runs duration_s;
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  upcalls ();
  observability ();
  if Sys.getenv_opt "VINI_SKIP_ABLATIONS" = None then ablations ();
  if Sys.getenv_opt "VINI_SKIP_MICRO" = None then microbenchmarks ();
  if Sys.getenv_opt "VINI_SKIP_PERF" = None then Perf_suite.run ();
  Printf.printf "\ndone.\n"
