(* The hot-path performance suite: microbenchmarks of the two structures
   the scheduler/FIB overhaul replaced (event-queue churn, LPM lookup)
   plus a macro end-to-end forwarding replay of the §5.1 DETER
   experiment, written to BENCH_PERF.json in the stable vini.perf/1
   schema.

   CI gates on the same-run speedup ratios (new implementation vs the
   retained old one, measured back-to-back in this process), not on
   absolute ns/op: a ratio cancels out host speed, so the committed
   baseline transfers across runner generations.  Absolute numbers are
   still recorded for the trajectory.  Methodology and schema are
   documented in PERFORMANCE.md.

   Environment knobs:
     VINI_PERF_OUT   output path (default BENCH_PERF.json)
     VINI_PERF_FAST  set to shrink op counts ~8x (smoke runs) *)

module Export = Vini_measure.Export
module Calendar = Vini_std.Calendar
module Heap = Vini_std.Heap
module Rng = Vini_std.Rng
module Fib = Vini_click.Fib
module Fib_reference = Vini_click.Fib_reference
module Addr = Vini_net.Addr
module Prefix = Vini_net.Prefix

let fast = Sys.getenv_opt "VINI_PERF_FAST" <> None
let scale n = if fast then max 1 (n / 8) else n

type bench = { name : string; ops : int; ns_per_op : float }

(* Best-of-trials CPU time: the minimum is the least-disturbed run, the
   standard estimator for throughput microbenchmarks. *)
let bench ~name ~ops ?(trials = 3) f =
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Sys.time () in
    f ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  { name; ops; ns_per_op = !best *. 1e9 /. float_of_int ops }

(* ---- Scheduler churn (hold model) ------------------------------------- *)

(* Steady state of [sched_pending] events; every op pops the earliest and
   schedules a replacement a random increment later — the classic "hold"
   workload a DES event queue lives under.  Increments are uniform in
   [0, 2 ms): tens of thousands of pending timers spread over
   milliseconds, the regime the engine actually runs in (timeouts, link
   serialisation, sampling ticks).  Both sides consume the same seeded
   increment stream and both are stable on ties, so they do identical
   work in identical order. *)

let sched_pending = 20_000
let sched_ops = scale 1_000_000
let sched_inc = 2_000_000

let churn_heap () =
  let rng = Rng.create 42 in
  let cmp (k1, s1) (k2, s2) =
    match Int64.compare k1 k2 with 0 -> Int.compare s1 s2 | c -> c
  in
  let h = Heap.create ~cmp in
  let seq = ref 0 in
  let push key =
    incr seq;
    Heap.push h (key, !seq)
  in
  for _ = 1 to sched_pending do
    push (Int64.of_int (Rng.int rng sched_inc))
  done;
  for _ = 1 to sched_ops do
    match Heap.pop h with
    | None -> assert false
    | Some (k, _) ->
        push (Int64.add k (Int64.of_int (Rng.int rng sched_inc)))
  done

let churn_calendar () =
  let rng = Rng.create 42 in
  let c = Calendar.create () in
  for _ = 1 to sched_pending do
    let k = Rng.int rng sched_inc in
    Calendar.push c ~key:k k
  done;
  for _ = 1 to sched_ops do
    match Calendar.pop c with
    | None -> assert false
    | Some k ->
        let k' = k + Rng.int rng sched_inc in
        Calendar.push c ~key:k' k'
  done

(* The queue the engine actually runs on ([Vini_std.Eventq], a hole-based
   binary heap with O(1) [min_key] for the inline fast path); insertion
   order is its tie-break, matching the seeded stream here. *)
let churn_eventq () =
  let rng = Rng.create 42 in
  let q = Vini_std.Eventq.create ~dummy:0 () in
  for _ = 1 to sched_pending do
    let k = Rng.int rng sched_inc in
    Vini_std.Eventq.push q ~key:k k
  done;
  for _ = 1 to sched_ops do
    match Vini_std.Eventq.pop q with
    | None -> assert false
    | Some k ->
        let k' = k + Rng.int rng sched_inc in
        Vini_std.Eventq.push q ~key:k' k'
  done

(* ---- Sharded engine scaling (conservative PDES on domains) ------------ *)

(* The same hold-model churn, run on the sharded runtime: one shard per
   Abilene PoP, lookahead = the real inter-PoP propagation delays
   (adjacency-restricted), every 16th event migrating to a random
   neighbor via [Shard.post] so the barrier/mailbox machinery is on the
   measured path.  Identical seeded workload at [domains = 1] and
   [domains = 4]; the per-shard FNV checksum over (event time, payload)
   must match between the two configs — the bench aborts otherwise — and
   the ratio of the two wall-clock timings is the [sched.sharded_scaling]
   speedup CI gates at >= 1.5x on 4-core runners.  Wall clock, not
   [Sys.time]: CPU seconds sum across domains and would hide scaling. *)

module Coordinator = Vini_sim.Coordinator
module Shard = Vini_sim.Shard
module Stime = Vini_sim.Time
module Graph = Vini_topo.Graph

let sharded_pending = 1_024 (* initial events per shard *)
let sharded_work = 256 (* xorshift64 rounds of per-event CPU *)
let sharded_horizon = if fast then Stime.ms 12 else Stime.ms 100

let sharded_run ~domains =
  let g = Vini_repro.Abilene.topology () in
  let n = Graph.node_count g in
  let lookahead src dst =
    Option.map (fun l -> l.Graph.delay) (Graph.find_link g src dst)
  in
  let c = Coordinator.create ~seed:42 ~shards:n ~domains ~lookahead () in
  let neighbors =
    Array.init n (fun s -> Array.of_list (Graph.neighbors g s))
  in
  (* Shard-confined cells: slot [s] is touched only by shard [s]. *)
  let sums = Array.make n 0L in
  let fired = Array.make n 0 in
  let rec ev s () =
    let sh = Coordinator.shard c s in
    let x = ref (Int64.of_int ((s lsl 20) lxor (fired.(s) + 1))) in
    for _ = 1 to sharded_work do
      x := Int64.logxor !x (Int64.shift_left !x 13);
      x := Int64.logxor !x (Int64.shift_right_logical !x 7);
      x := Int64.logxor !x (Int64.shift_left !x 17)
    done;
    sums.(s) <-
      Int64.add (Int64.mul sums.(s) 1099511628211L)
        (Int64.add (Int64.of_int (Shard.now sh)) !x);
    fired.(s) <- fired.(s) + 1;
    let rng = Shard.rng sh in
    if fired.(s) land 15 = 0 && Array.length neighbors.(s) > 0 then begin
      (* Migrate: the event continues on a random neighbor one link
         propagation later (>= lookahead by construction). *)
      let d, l = neighbors.(s).(Rng.int rng (Array.length neighbors.(s))) in
      ignore
        (Shard.post sh ~dst:d
           (Stime.add (Shard.now sh) l.Graph.delay)
           (ev d))
    end
    else
      ignore (Shard.after sh (Stime.ns (Rng.int rng sched_inc)) (ev s))
  in
  for s = 0 to n - 1 do
    let sh = Coordinator.shard c s in
    for _ = 1 to sharded_pending do
      ignore (Shard.at sh (Stime.ns (Rng.int (Shard.rng sh) sched_inc)) (ev s))
    done
  done;
  Coordinator.run ~until:sharded_horizon c;
  let sum = Array.fold_left Int64.add 0L sums in
  (Coordinator.events_fired c, sum)

let sharded_bench ~name ~domains =
  let trials = if fast then 1 else 2 in
  let best = ref infinity and ops = ref 1 and sum = ref 0L in
  for _ = 1 to trials do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let n, s = sharded_run ~domains in
    let dt = Unix.gettimeofday () -. t0 in
    ops := n;
    sum := s;
    if dt < !best then best := dt
  done;
  ({ name; ops = !ops; ns_per_op = !best *. 1e9 /. float_of_int !ops }, !sum)

(* ---- LPM lookup ------------------------------------------------------- *)

(* An Abilene-scale-and-then-some table (2k prefixes, /8../28) probed two
   ways.  The flow trace is §5.1's forwarding workload: destinations come
   from a small set of concurrent flows, so the 256-slot flow cache holds
   the working set.  The uniform trace is the adversarial counterpoint —
   every probe a fresh address, the cache nearly useless — isolating the
   path-compressed trie against the one-bit-per-node original. *)

let lpm_entries = 2_048
let lpm_probes = 65_536
let lpm_passes = scale 64

let rand_addr rng =
  let hi = Rng.int rng 0x10000 in
  let lo = Rng.int rng 0x10000 in
  Addr.of_int ((hi lsl 16) lor lo)

let lpm_table rng =
  Array.init lpm_entries (fun _ ->
      let a = rand_addr rng in
      let len = 8 + Rng.int rng 21 in
      (Prefix.make a len, a))

let flow_probes rng =
  let flows = Array.init 64 (fun _ -> rand_addr rng) in
  Array.init lpm_probes (fun _ -> flows.(Rng.int rng (Array.length flows)))

let uniform_probes rng = Array.init lpm_probes (fun _ -> rand_addr rng)

let lookup_loop lookup fib probes () =
  let n = Array.length probes in
  for _ = 1 to lpm_passes do
    for i = 0 to n - 1 do
      ignore (lookup fib (Array.unsafe_get probes i))
    done
  done

(* ---- Embedding solvers: 100-slice arrival ----------------------------- *)

(* The admission-control workload end to end: 100 six-node ring slices
   arrive one by one at a fresh Abilene substrate (4 reference cores per
   site, so the tail of the sequence is rejected) and each is solved
   and, when feasible, committed.  Timed per slice decision for both
   solvers — the online solver pays exponential congestion pricing per
   candidate, greedy a best-fit scan.  There is no old/new pair here
   (the two algorithms trade placement quality against solve time), so
   both are recorded, not gated. *)

let embed_slices = 100
let embed_passes = scale 16

let embed_arrival algo () =
  let module S = Vini_embed.Substrate in
  let module Em = Vini_embed.Embed in
  let module Rq = Vini_embed.Request in
  let phys = Vini_repro.Abilene.topology () in
  let vtopo = Vini_repro.Migration.virtual_ring 6 in
  for _ = 1 to embed_passes do
    let sub = S.of_graph ~node_capacity:(fun _ -> 4.0) phys in
    for i = 0 to embed_slices - 1 do
      let req =
        Rq.make ~name:"arrival"
          ~cpu:(fun _ -> 0.25)
          ~bw:(fun _ -> 5e7)
          ~algo ~seed:i ()
      in
      ignore (Em.admit sub ~vtopo req)
    done
  done

(* ---- Internet-scale scenarios (DESIGN.md §17) -------------------------- *)

(* Informational rows, never gated: seeded generation of the reference
   200-PoP backbone, the lazy workload stream drained at depth, and both
   embedding solvers admitting 100 slice arrivals against that generated
   substrate — the scale the heap-based Dijkstra in [constrained_path]
   exists for (the old unvisited-min scan was quadratic in substrate
   size and dominated exactly this workload). *)

let scen_spec =
  { Vini_scenario.Generate.kind = Vini_scenario.Generate.backbone 200;
    seed = 42 }

let scen_gen_passes = scale 40
let scen_flows = scale 200_000

let scen_generate () =
  for _ = 1 to scen_gen_passes do
    ignore (Vini_scenario.Generate.generate scen_spec)
  done

let scen_workload () =
  let module W = Vini_scenario.Workload in
  let stream =
    W.create (W.default ~users:1_000_000 ~seed:7) ~nodes:200
  in
  let acc = ref 0 in
  for _ = 1 to scen_flows do
    acc := !acc + (W.next stream).W.wire_bytes
  done;
  ignore !acc

let scen_embed_slices = 100
let scen_embed_passes = scale 4

let scen_embed algo () =
  let module S = Vini_embed.Substrate in
  let module Em = Vini_embed.Embed in
  let module Rq = Vini_embed.Request in
  let phys = Vini_scenario.Generate.generate scen_spec in
  let vtopo = Vini_repro.Migration.virtual_ring 6 in
  for _ = 1 to scen_embed_passes do
    let sub = S.of_graph ~node_capacity:(fun _ -> 4.0) phys in
    for i = 0 to scen_embed_slices - 1 do
      let req =
        Rq.make ~name:"arrival"
          ~cpu:(fun _ -> 0.25)
          ~bw:(fun _ -> 5e7)
          ~algo ~seed:i ()
      in
      ignore (Em.admit sub ~vtopo req)
    done
  done

(* ---- Live-migration cutover ------------------------------------------- *)

(* Cost of one complete make-before-break cycle — pre-clone,
   double-provision, barrier flip, 2 s drain, retire — measured by
   ping-ponging a virtual node between two spare Abilene machines on a
   pre-warmed slice.  Informational (no old/new pair: the alternative is
   crash-driven re-embedding, which buys different semantics, not the
   same work done faster), so it is recorded but never gated. *)

let migrate_cycles = scale 8

let migrate_cutover_setup () =
  let module Engine = Vini_sim.Engine in
  let module Time = Vini_sim.Time in
  let module Iias = Vini_overlay.Iias in
  let g = Vini_rcc.Rcc.abilene () in
  let engine = Engine.create ~seed:4242 () in
  let profile _ =
    Vini_phys.Underlay.planetlab_profile ~speed_ghz:2.0
  in
  let vini = Vini_core.Vini.create ~engine ~graph:g ~profile () in
  let req =
    Vini_embed.Request.make ~name:"cutover"
      ~cpu:(fun _ -> 0.25)
      ~seed:4242 ()
  in
  let spec =
    Vini_core.Experiment.make ~name:"cutover"
      ~slice:(Vini_phys.Slice.pl_vini "cutover")
      ~vtopo:(Vini_repro.Migration.virtual_ring 6)
      ~placement:(Vini_core.Experiment.Auto req)
      ()
  in
  let inst = Vini_core.Vini.deploy vini spec in
  Vini_core.Vini.start inst;
  Engine.run ~until:(Time.sec 30) engine;
  let emb = Iias.current_embedding (Vini_core.Vini.iias inst) in
  let spares =
    List.filter
      (fun p -> not (Array.exists (( = ) p) emb))
      (List.init (Vini_topo.Graph.node_count g) Fun.id)
  in
  match spares with
  | a :: b :: _ -> (engine, inst, a, b)
  | _ -> failwith "migrate_cutover: fewer than two spare machines"

let migrate_cutover_loop (engine, inst, spare_a, spare_b) () =
  let module Engine = Vini_sim.Engine in
  let module Time = Vini_sim.Time in
  let iias = Vini_core.Vini.iias inst in
  for _ = 1 to migrate_cycles do
    let target =
      if Vini_overlay.Iias.current_pnode iias 0 = spare_a then spare_b
      else spare_a
    in
    (match
       Vini_core.Vini.migrate ~target ~drain:(Time.sec 2) inst ~vnode:0
     with
    | Ok true -> ()
    | Ok false | Error _ -> failwith "migrate_cutover: move refused");
    Engine.run
      ~until:(Time.add (Engine.now engine) (Time.sec 3))
      engine
  done

(* ---- Batched data plane (Snabb-style breaths) ------------------------- *)

(* The tentpole pair: the same pool-sourced packet stream through the same
   click chain (failure injection -> FIB lookup -> recycling sink), driven
   two ways.  The per-packet side schedules one engine event per forwarded
   packet — the classic schedule every element ran under before batching.
   The breath side schedules one engine event per up-to-64-packet burst
   ([Ring.pop_into] -> [Element.push_batch]), with FIB lookups coalesced
   through a last-destination memo guarded by the table's generation
   counter.  Both sides forward the identical packets in the identical
   order (same pool, same ring discipline, same element logic), so the
   ratio isolates exactly what batching removes: per-packet event-queue
   churn, dispatch, and cache-cold element entry.  Gated >= 5x in CI. *)

let dp_packets = scale 2_000_000
let dp_burst = 64
let dp_pool = 256

let dp_chain pool fib =
  let module Element = Vini_click.Element in
  let module Batch = Vini_click.Batch in
  let sink =
    Element.make_batch "sink"
      ~single:(fun pkt -> Vini_net.Pool.recycle pool pkt)
      ~batch:(fun b ->
        for i = 0 to Batch.length b - 1 do
          Vini_net.Pool.recycle pool (Batch.unsafe_get b i)
        done)
  in
  let route =
    (* FIB stage: per packet on the single path; memo-coalesced per burst
       on the batch path, revalidated against [Fib.generation]. *)
    Element.make_batch "route"
      ~single:(fun pkt ->
        ignore (Fib.lookup fib pkt.Vini_net.Packet.dst);
        Element.push sink pkt)
      ~batch:(fun b ->
        let memo_gen = ref (-1) and memo_dst = ref Addr.any in
        for i = 0 to Batch.length b - 1 do
          let pkt = Batch.unsafe_get b i in
          let dst = pkt.Vini_net.Packet.dst in
          if
            not
              (!memo_gen = Fib.generation fib && Addr.equal dst !memo_dst)
          then begin
            ignore (Fib.lookup fib dst);
            memo_gen := Fib.generation fib;
            memo_dst := dst
          end
        done;
        Element.push_batch sink b)
  in
  let faulty =
    Vini_click.Faulty.create ~rng:(Rng.create 99) ~out:route "dp"
  in
  Vini_click.Faulty.element faulty

let dp_run ~batched () =
  let module Engine = Vini_sim.Engine in
  let module Time = Vini_sim.Time in
  let module Pool = Vini_net.Pool in
  let module Ring = Vini_click.Ring in
  let module Batch = Vini_click.Batch in
  let module Element = Vini_click.Element in
  let dsts =
    (* A few concurrent flows, like the §5.1 replay: bursts hold runs of
       the same destination, which is what lookup coalescing exploits. *)
    Array.init 4 (fun i -> Addr.of_string (Printf.sprintf "10.9.%d.1" i))
  in
  let pool =
    Pool.create ~capacity:dp_pool
      ~mint:(fun i ->
        Vini_net.Packet.udp ~src:(Addr.of_string "10.8.0.1")
          ~dst:dsts.(i * 7 / dp_pool mod 4)
          ~sport:1000 ~dport:2000 (Vini_net.Packet.Bytes_ 512))
      ()
  in
  let fib = Fib.create () in
  Array.iter (fun d -> Fib.add fib (Prefix.make d 24) d) dsts;
  Fib.add fib Prefix.default_route Addr.any;
  let chain = dp_chain pool fib in
  let ring = Ring.create ~capacity:dp_pool in
  let burst = Batch.create ~capacity:dp_burst in
  let refill () =
    let go = ref true in
    while !go && Pool.available pool > 0 do
      let p = Pool.take pool in
      if not (Ring.push ring p) then begin
        Pool.recycle pool p;
        go := false
      end
    done
  in
  let engine = Engine.create ~seed:5 () in
  (* The engine runs under realistic pressure: the replay keeps tens of
     thousands of timers pending (TCP timeouts, link serialisation
     completions, sampling ticks), so every per-packet event must pay the
     real sift depth, not a single-element heap's.  These background
     timers sit beyond the run horizon and never fire. *)
  let horizon = Time.sec 1_000_000 in
  for _ = 1 to sched_pending do
    ignore (Engine.at engine (Time.add horizon (Time.sec 1)) ignore)
  done;
  let sent = ref 0 in
  let dt = Time.us 10 in
  let rec ev () =
    refill ();
    if batched then begin
      Batch.clear burst;
      let n = Ring.pop_into ring burst ~max:dp_burst in
      if n > 0 then Element.push_batch chain burst;
      sent := !sent + n
    end
    else begin
      (match Ring.pop ring with
      | Some p ->
          Element.push chain p;
          incr sent
      | None -> ());
      ()
    end;
    if !sent < dp_packets then ignore (Engine.after engine dt ev)
  in
  ignore (Engine.after engine dt ev);
  Engine.run ~until:horizon engine;
  assert (!sent >= dp_packets)

(* ---- Macro: §5.1 forwarding replay ------------------------------------ *)

(* The Table 2 IIAS row end to end — iperf TCP across the 3-node DETER
   chain with user-space Click forwarding — timed as CPU seconds per
   simulated second.  No old/new pair exists at this level (the whole
   point of the overhaul is that both hot paths changed underneath it),
   so this bench is recorded, not gated. *)

let macro () =
  let duration_s = if fast then 1 else 2 in
  let t0 = Sys.time () in
  let r = Vini_repro.Deter.iias_tcp ~runs:1 ~duration_s () in
  let cpu = Sys.time () -. t0 in
  ( {
      name = "e2e.iias_tcp_replay";
      ops = duration_s;
      ns_per_op = cpu *. 1e9 /. float_of_int duration_s;
    },
    r.Vini_repro.Deter.mbps_mean )

(* ---- Spans overhead: the flight recorder on the e2e replay ------------ *)

(* Three more replays of the same workload: two with the recorder absent
   (their ratio, [spans_disabled_path], isolates run-to-run noise on the
   disabled path — every packet-path site pays exactly one load+test — and
   is gated near 1.0 in CI), one with the recorder installed and the span
   category enabled ([spans_enabled_cost], recorded but not gated: full
   recording is a debugging mode, not the default). *)

let spans_replay ~spans ~duration_s =
  (* Start every replay from a compacted heap: the pairwise ratios must
     not see the previous replay's allocator state. *)
  Gc.compact ();
  if spans then begin
    let trace =
      Vini_sim.Trace.create ~capacity:64
        ~categories:[ Vini_sim.Trace.Category.Span ] ()
    in
    Vini_sim.Trace.install trace;
    Vini_sim.Span.install (Vini_sim.Span.create ~capacity:65_536 ())
  end;
  let t0 = Sys.time () in
  ignore (Vini_repro.Deter.iias_tcp ~runs:1 ~duration_s ());
  let cpu = Sys.time () -. t0 in
  if spans then begin
    Vini_sim.Span.uninstall ();
    Vini_sim.Trace.uninstall ()
  end;
  cpu

let spans_benches () =
  let duration_s = if fast then 1 else 2 in
  let mk name cpu =
    {
      name;
      ops = duration_s;
      ns_per_op = cpu *. 1e9 /. float_of_int duration_s;
    }
  in
  (* The disabled pair alternates its trials (a, b, a, b, ...) and takes
     the per-side minimum: the gated ratio is tight (2%), and alternation
     makes monotonic drift (thermal, page cache) hit both sides equally
     instead of landing on whichever side happened to run last. *)
  let trials = if fast then 1 else 3 in
  let off_a = ref infinity and off_b = ref infinity in
  for _ = 1 to trials do
    off_a := Float.min !off_a (spans_replay ~spans:false ~duration_s);
    off_b := Float.min !off_b (spans_replay ~spans:false ~duration_s)
  done;
  let on =
    let once () = spans_replay ~spans:true ~duration_s in
    if fast then once () else Float.min (once ()) (once ())
  in
  ( mk "e2e.spans_off_a" !off_a,
    mk "e2e.spans_on" on,
    mk "e2e.spans_off_b" !off_b )

(* ---- Profiler overhead: the runtime self-profiler on the e2e replay --- *)

(* Same trio shape as the spans gate, for [Vini_sim.Profile]: two replays
   with no profile installed (ratio [profiler_disabled_path], gated >=
   0.98 in CI — every instrumented site pays exactly one load + test),
   one with a profile installed ([profiler_enabled_cost], recorded but
   not gated: self-observation is an opt-in mode). *)

let profiler_replay ~profiled ~duration_s =
  Gc.compact ();
  if profiled then Vini_sim.Profile.install (Vini_sim.Profile.create ());
  let t0 = Sys.time () in
  ignore (Vini_repro.Deter.iias_tcp ~runs:1 ~duration_s ());
  let cpu = Sys.time () -. t0 in
  if profiled then Vini_sim.Profile.uninstall ();
  cpu

let profiler_benches () =
  let duration_s = if fast then 1 else 2 in
  let mk name cpu =
    {
      name;
      ops = duration_s;
      ns_per_op = cpu *. 1e9 /. float_of_int duration_s;
    }
  in
  (* The gated pair alternates its trials (a, b, a, b, ...) and takes the
     per-side minimum: monotonic drift across the trio (thermal, page
     cache) then hits both sides of the ratio equally instead of landing
     on whichever side happened to run last. *)
  let trials = if fast then 1 else 3 in
  let off_a = ref infinity and off_b = ref infinity in
  for _ = 1 to trials do
    off_a := Float.min !off_a (profiler_replay ~profiled:false ~duration_s);
    off_b := Float.min !off_b (profiler_replay ~profiled:false ~duration_s)
  done;
  let on =
    let once () = profiler_replay ~profiled:true ~duration_s in
    if fast then once () else Float.min (once ()) (once ())
  in
  ( mk "e2e.profiler_off_a" !off_a,
    mk "e2e.profiler_on" on,
    mk "e2e.profiler_off_b" !off_b )

(* ---- Assembly --------------------------------------------------------- *)

let bench_json b =
  Export.Obj
    [
      ("name", Export.Str b.name);
      ("ops", Export.Num (float_of_int b.ops));
      ("ns_per_op", Export.Num b.ns_per_op);
    ]

let speedup_json name ~old_b ~new_b =
  Export.Obj
    [
      ("name", Export.Str name);
      ("old", Export.Str old_b.name);
      ("new", Export.Str new_b.name);
      ("ratio", Export.Num (old_b.ns_per_op /. new_b.ns_per_op));
    ]

let run () =
  Printf.printf "\n== Hot-path performance suite (vini.perf/1%s) ==\n%!"
    (if fast then ", fast mode" else "");
  let heap_b = bench ~name:"sched.heap_churn" ~ops:sched_ops churn_heap in
  let cal_b =
    bench ~name:"sched.calendar_churn" ~ops:sched_ops churn_calendar
  in
  let evq_b = bench ~name:"sched.eventq_churn" ~ops:sched_ops churn_eventq in
  let table = lpm_table (Rng.create 7) in
  let refer = Fib_reference.create () in
  let fib = Fib.create () in
  Array.iter
    (fun (p, v) ->
      Fib_reference.add refer p v;
      Fib.add fib p v)
    table;
  let flows = flow_probes (Rng.create 11) in
  let uniform = uniform_probes (Rng.create 13) in
  let lpm_ops = lpm_passes * lpm_probes in
  let ref_flow =
    bench ~name:"lpm.reference_flow" ~ops:lpm_ops
      (lookup_loop Fib_reference.lookup refer flows)
  in
  let fib_flow =
    bench ~name:"lpm.compressed_flow" ~ops:lpm_ops
      (lookup_loop Fib.lookup fib flows)
  in
  let hits = Fib.cache_hits fib and misses = Fib.cache_misses fib in
  let ref_uni =
    bench ~name:"lpm.reference_uniform" ~ops:lpm_ops
      (lookup_loop Fib_reference.lookup refer uniform)
  in
  let fib_uni =
    bench ~name:"lpm.compressed_uniform" ~ops:lpm_ops
      (lookup_loop Fib.lookup fib uniform)
  in
  let embed_ops = embed_passes * embed_slices in
  let embed_greedy =
    bench ~name:"embed.solve_greedy" ~ops:embed_ops
      (embed_arrival Vini_embed.Request.Greedy)
  in
  let embed_online =
    bench ~name:"embed.solve_online" ~ops:embed_ops
      (embed_arrival Vini_embed.Request.Online)
  in
  let scen_gen_b =
    bench ~name:"scenario.gen_backbone200" ~ops:scen_gen_passes scen_generate
  in
  let scen_wl_b =
    bench ~name:"scenario.workload_1m" ~ops:scen_flows scen_workload
  in
  let scen_ops = scen_embed_passes * scen_embed_slices in
  let scen_greedy =
    bench ~name:"scenario.embed200_greedy" ~ops:scen_ops
      (scen_embed Vini_embed.Request.Greedy)
  in
  let scen_online =
    bench ~name:"scenario.embed200_online" ~ops:scen_ops
      (scen_embed Vini_embed.Request.Online)
  in
  let sharded_1, sum_1 = sharded_bench ~name:"sched.sharded_1dom" ~domains:1 in
  let sharded_4, sum_4 = sharded_bench ~name:"sched.sharded_4dom" ~domains:4 in
  if sum_1 <> sum_4 then (
    Printf.eprintf
      "FATAL: sharded determinism violated: checksum %Ld (1 domain) <> %Ld (4 domains)\n%!"
      sum_1 sum_4;
    exit 1);
  let migrate_b =
    bench ~name:"embed.migrate_cutover" ~ops:migrate_cycles
      (migrate_cutover_loop (migrate_cutover_setup ()))
  in
  let dp_single =
    bench ~name:"dp.per_packet_events" ~ops:dp_packets ~trials:2
      (dp_run ~batched:false)
  in
  let dp_batch =
    bench ~name:"dp.breath_64" ~ops:dp_packets ~trials:2
      (dp_run ~batched:true)
  in
  let macro_b, mbps = macro () in
  let spans_off_a, spans_on, spans_off_b = spans_benches () in
  let prof_off_a, prof_on, prof_off_b = profiler_benches () in
  let benches =
    [ heap_b; cal_b; evq_b; sharded_1; sharded_4; ref_flow; fib_flow;
      ref_uni; fib_uni; embed_greedy; embed_online; scen_gen_b; scen_wl_b;
      scen_greedy; scen_online; migrate_b; dp_single;
      dp_batch; macro_b; spans_off_a; spans_on; spans_off_b; prof_off_a;
      prof_on; prof_off_b ]
  in
  let speedups =
    [
      (* The engine's queue vs the generic heap it started from; the
         calendar remains recorded above as the retained alternative. *)
      ("scheduler_churn", heap_b, evq_b);
      (* Domain scaling of the sharded runtime: wall-clock 1-domain /
         4-domain on the identical seeded workload.  Gated >= 1.5x in CI
         on 4-core runners; ~1.0 on this box is honest when it has fewer
         cores (the [cores] runner field records which regime applied). *)
      ("sched.sharded_scaling", sharded_1, sharded_4);
      ("lpm_lookup_flow", ref_flow, fib_flow);
      ("lpm_lookup_uniform", ref_uni, fib_uni);
      (* The batched data plane: one engine event per 64-packet breath vs
         one per packet, identical packets in identical order both ways.
         Gated >= 5x in CI — what the per-packet schedule pays in event
         churn is the whole prize. *)
      ("dataplane_batching", dp_single, dp_batch);
      (* The disabled-path gate: two recorder-absent replays should cost
         the same (ratio ~1.0; CI fails below 0.98, i.e. >2% drift). *)
      ("spans_disabled_path", spans_off_a, spans_off_b);
      (* Full-recording cost, old=enabled / new=disabled: >1 means the
         recorder costs that factor when switched on.  Not gated. *)
      ("spans_enabled_cost", spans_on, spans_off_b);
      (* The profiler's disabled-path gate, same contract as the spans
         one: two profile-absent replays, ratio ~1.0, CI fails below
         0.98. *)
      ("profiler_disabled_path", prof_off_a, prof_off_b);
      (* Profiler-on cost, recorded but not gated. *)
      ("profiler_enabled_cost", prof_on, prof_off_b);
    ]
  in
  List.iter
    (fun b -> Printf.printf "  %-24s %12.1f ns/op  (%d ops)\n" b.name b.ns_per_op b.ops)
    benches;
  List.iter
    (fun (n, o, w) ->
      Printf.printf "  speedup %-18s %6.2fx  (%s / %s)\n" n
        (o.ns_per_op /. w.ns_per_op)
        o.name w.name)
    speedups;
  Printf.printf
    "  flow-cache hit rate %.1f%% on the flow trace  (%d hits / %d misses)\n"
    (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
    hits misses;
  Printf.printf "  e2e replay %.1f Mb/s\n" mbps;
  Printf.printf
    "  sharded determinism checksum %Ld (identical at 1 and 4 domains)\n"
    sum_1;
  let doc =
    Export.Obj
      [
        ("schema", Export.Str "vini.perf/1");
        ( "runner",
          Export.Obj
            [
              ("ocaml", Export.Str Sys.ocaml_version);
              ("word_size", Export.Num (float_of_int Sys.word_size));
              ( "cores",
                Export.Num
                  (float_of_int (Domain.recommended_domain_count ())) );
            ] );
        ("benches", Export.Arr (List.map bench_json benches));
        ( "speedups",
          Export.Arr
            (List.map
               (fun (n, o, w) -> speedup_json n ~old_b:o ~new_b:w)
               speedups) );
      ]
  in
  let path =
    Option.value (Sys.getenv_opt "VINI_PERF_OUT") ~default:"BENCH_PERF.json"
  in
  Export.write ~path doc;
  Printf.printf "  wrote %s\n%!" path
