(* The vini command-line tool: run the paper's experiments, inspect the
   built-in topologies, and mirror arbitrary router configurations into a
   convergence experiment. *)

open Cmdliner
open Vini_repro
module Report = Vini_measure.Report

let f = Report.fmt_f

(* --- shared options ------------------------------------------------------ *)

let runs_arg =
  let doc = "Repetitions for throughput experiments (the paper used 10)." in
  Arg.(value & opt int 3 & info [ "r"; "runs" ] ~docv:"N" ~doc)

let seconds_arg =
  let doc = "Measurement window per run, in simulated seconds." in
  Arg.(value & opt int 5 & info [ "s"; "seconds" ] ~docv:"SEC" ~doc)

let seed_arg =
  let doc = "Base random seed (runs are deterministic given a seed)." in
  Arg.(value & opt int 1001 & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_cats_conv =
  let parser s =
    if s = "all" then Ok Vini_sim.Trace.Category.all
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
            let name = String.trim name in
            match Vini_sim.Trace.Category.of_name name with
            | Some c -> go (c :: acc) rest
            | None ->
                Error
                  (`Msg
                    (Printf.sprintf
                       "unknown trace category %S (expected 'all' or a \
                        comma-separated subset of: %s)"
                       name
                       (String.concat ", "
                          (List.map Vini_sim.Trace.Category.name
                             Vini_sim.Trace.Category.all)))))
      in
      go [] (String.split_on_char ',' s)
  in
  let printer ppf cats =
    Format.pp_print_string ppf
      (String.concat "," (List.map Vini_sim.Trace.Category.name cats))
  in
  Arg.conv (parser, printer)

let trace_arg =
  let doc =
    "Record a typed event trace.  $(docv) is 'all' or a comma-separated \
     subset of: packet_tx, packet_rx, packet_drop, route_update, \
     sched_latency, fault_injected, process_lifecycle, watchdog, custom, \
     span.  An unknown name is rejected with the valid list."
  in
  Arg.(value & opt (some trace_cats_conv) None
       & info [ "trace"; "trace-categories" ] ~docv:"CATS" ~doc)

let domains_arg =
  let doc =
    "Run on the sharded engine with $(docv) OCaml domains.  The logical \
     shard count is fixed, so output is byte-identical for every value \
     (the determinism-gate CI job enforces it); omit the flag for the \
     classic single-queue engine."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let spans_out_arg =
  let doc =
    "Install the per-packet flight recorder and write its vini.spans/1 \
     JSON document (causal trees as Chrome traceEvents, latency \
     attribution, drop forensics) to $(docv).  Inspect with $(b,vini \
     spans)."
  in
  Arg.(value & opt (some string) None
       & info [ "spans-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write metrics (time series, latency histograms, and the trace when \
     $(b,--trace) is given) as a vini.metrics/1 JSON document to $(docv)."
  in
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let timeline_out_arg =
  let doc =
    "Install the runtime profiler and write its vini.timeline/1 JSON \
     document (periodic engine/profiler/overlay snapshots on the \
     simulated clock) to $(docv).  Inspect with $(b,vini top).  \
     Deterministic: byte-identical for every $(b,--domains) value."
  in
  Arg.(value & opt (some string) None
       & info [ "timeline-out" ] ~docv:"FILE" ~doc)

let timeline_interval_arg =
  let doc =
    "Snapshot interval for $(b,--timeline-out), in simulated \
     milliseconds."
  in
  Arg.(value & opt int 1000
       & info [ "timeline-interval" ] ~docv:"MS" ~doc)

(* Physical substrates addressable by name ([vini run], [vini embed]).
   "mesh" is a generous default: 16 well-connected Waxman sites.  A
   [.json] path loads a generated vini.topo/1 substrate ([vini gen]). *)
let physical_topology ~seed = function
  | "abilene" -> Abilene.topology ()
  | "deter" -> Vini_topo.Datasets.Deter.topology ()
  | "planetlab3" -> Vini_topo.Datasets.Planetlab3.topology ()
  | "nlr" -> Vini_topo.Datasets.Nlr.topology ()
  | "mesh" -> Vini_topo.Datasets.waxman ~rng:(Vini_std.Rng.create seed) ~n:16 ()
  | path when Filename.check_suffix path ".json" -> (
      match Vini_scenario.Generate.load_file path with
      | Ok g -> g
      | Error e -> failwith (path ^ ": " ^ e))
  | other -> failwith ("unknown substrate " ^ other)

(* Dump the "trace" part of an export document as one line per event. *)
let print_trace_events doc =
  let module E = Vini_measure.Export in
  let events =
    match Option.bind (E.member "trace" doc) (E.member "events") with
    | Some ev -> Option.value ~default:[] (E.to_list ev)
    | None -> []
  in
  let str name ev =
    Option.value ~default:"" (Option.bind (E.member name ev) E.to_str)
  in
  List.iter
    (fun ev ->
      let t =
        Option.value ~default:0.0
          (Option.bind (E.member "t" ev) E.to_float)
      in
      Printf.printf "%12.6f %-14s %-5s %-20s" t (str "category" ev)
        (str "severity" ev) (str "component" ev);
      (match ev with
      | E.Obj fields ->
          List.iter
            (fun (k, v) ->
              match k with
              | "t" | "category" | "severity" | "component" -> ()
              | _ ->
                  let rendered =
                    match v with
                    | E.Str s -> s
                    | E.Num x -> Printf.sprintf "%g" x
                    | other -> E.to_string other
                  in
                  Printf.printf " %s=%s" k rendered)
            fields
      | _ -> ());
      print_newline ())
    events;
  Printf.printf "(%d events shown)\n" (List.length events)

(* --- deter ---------------------------------------------------------------- *)

let deter_cmd =
  let run runs seconds seed trace metrics_out spans_out timeline_out
      timeline_interval domains =
    (match domains with
    | Some d when d < 1 -> failwith "--domains must be at least 1"
    | Some _ | None -> ());
    let net = Deter.network_tcp ~runs ~duration_s:seconds ~seed () in
    let iias = Deter.iias_tcp ~runs ~duration_s:seconds ~seed:(seed + 1000) () in
    Report.table ~title:"Table 2: TCP throughput on DETER"
      ~header:[ ""; "Mb/s"; "std"; "fwdr CPU%" ]
      ~rows:
        [
          [ "Network"; f net.Deter.mbps_mean; f net.mbps_stddev; f net.fwdr_cpu_pct ];
          [ "IIAS"; f iias.Deter.mbps_mean; f iias.mbps_stddev; f iias.fwdr_cpu_pct ];
        ];
    let pn = Deter.network_ping ~seed:(seed + 2000) () in
    let pi = Deter.iias_ping ~seed:(seed + 3000) () in
    Report.table ~title:"Table 3: flood ping on DETER (ms)"
      ~header:[ ""; "min"; "avg"; "max"; "mdev"; "loss%" ]
      ~rows:
        [
          [ "Network"; f pn.Deter.p_min; f pn.p_avg; f pn.p_max; f pn.p_mdev; f pn.p_loss_pct ];
          [ "IIAS"; f pi.Deter.p_min; f pi.p_avg; f pi.p_max; f pi.p_mdev; f pi.p_loss_pct ];
        ];
    (match (trace, metrics_out) with
    | None, None -> ()
    | cats, out ->
        (* One extra, fully-instrumented IIAS run feeding the observability
           layer: engine/CPU/TCP histograms, Click counters, and (with
           [--trace]) the typed event ring. *)
        let trace_categories = Option.value cats ~default:[] in
        let doc, mbps =
          Deter.observability_run ~duration_s:seconds ~seed:(seed + 4000)
            ~trace_categories ()
        in
        Printf.printf "\ninstrumented IIAS TCP run: %.1f Mb/s\n" mbps;
        (match out with
        | Some path ->
            Vini_measure.Export.write ~path doc;
            Printf.printf "metrics written to %s\n" path
        | None -> print_trace_events doc));
    Option.iter
      (fun path ->
        (* A flight-recorded IIAS run: every packet's causal tree, with
           TTL-doomed probes so the artifact always has drop forensics. *)
        let doc, mbps =
          Deter.spans_run ~duration_s:seconds ~seed:(seed + 5000) ?domains ()
        in
        Printf.printf "\nflight-recorded IIAS TCP run: %.1f Mb/s\n" mbps;
        Vini_measure.Export.write ~path doc;
        Printf.printf "spans written to %s\n" path)
      spans_out;
    Option.iter
      (fun path ->
        (* A self-observed IIAS run: runtime profiler installed, periodic
           snapshots on the simulated clock.  Byte-identical across
           --domains values (CI's timeline-smoke job cmp's it). *)
        if timeline_interval < 1 then
          failwith "--timeline-interval must be at least 1 ms";
        let doc, mbps =
          Deter.timeline_run ~duration_s:seconds ~seed:(seed + 6000)
            ~interval_ms:timeline_interval ?domains ()
        in
        Printf.printf "\nself-observed IIAS TCP run: %.1f Mb/s\n" mbps;
        Vini_measure.Export.write ~path doc;
        Printf.printf "timeline written to %s\n" path)
      timeline_out
  in
  let doc = "Microbenchmark #1: overlay efficiency on dedicated hardware (§5.1.1)." in
  Cmd.v (Cmd.info "deter" ~doc)
    Term.(const run $ runs_arg $ seconds_arg $ seed_arg $ trace_arg
          $ metrics_out_arg $ spans_out_arg $ timeline_out_arg
          $ timeline_interval_arg $ domains_arg)

(* --- planetlab -------------------------------------------------------------- *)

let planetlab_cmd =
  let run runs seconds seed =
    let conditions =
      [ Planetlab.Network; Planetlab.Iias_default; Planetlab.Iias_plvini ]
    in
    Report.table ~title:"Table 4: TCP throughput on PlanetLab"
      ~header:[ ""; "Mb/s"; "std"; "Click CPU%" ]
      ~rows:
        (List.map
           (fun c ->
             let r = Planetlab.tcp c ~runs ~duration_s:seconds ~seed () in
             [ Planetlab.condition_name c; f r.Planetlab.mbps_mean;
               f r.mbps_stddev;
               (if Float.is_nan r.cpu_pct then "n/a" else f r.cpu_pct) ])
           conditions);
    Report.table ~title:"Table 5: flood ping on PlanetLab (ms)"
      ~header:[ ""; "min"; "avg"; "max"; "mdev" ]
      ~rows:
        (List.map
           (fun c ->
             let p = Planetlab.ping c ~seed:(seed + 500) () in
             [ Planetlab.condition_name c; f p.Planetlab.p_min; f p.p_avg;
               f p.p_max; f p.p_mdev ])
           conditions);
    Report.table ~title:"Table 6: UDP jitter on PlanetLab (ms)"
      ~header:[ ""; "mean"; "std" ]
      ~rows:
        (List.map
           (fun c ->
             let j = Planetlab.jitter c ~duration_s:seconds ~seed:(seed + 900) () in
             [ Planetlab.condition_name c; f j.Planetlab.jitter_mean_ms;
               f j.jitter_stddev_ms ])
           conditions);
    Report.table ~title:"Figure 6: loss vs UDP rate (%)"
      ~header:[ "Mb/s"; "Network"; "default share"; "PL-VINI" ]
      ~rows:
        (let s c = Planetlab.loss_sweep c ~duration_s:seconds ~seed:(seed + 1300) () in
         let n = s Planetlab.Network
         and d = s Planetlab.Iias_default
         and p = s Planetlab.Iias_plvini in
         List.map2
           (fun (rate, ln) ((_, ld), (_, lp)) -> [ f rate; f ln; f ld; f lp ])
           n (List.combine d p))
  in
  let doc = "Microbenchmark #2: the overlay on shared PlanetLab nodes (§5.1.2)." in
  Cmd.v (Cmd.info "planetlab" ~doc)
    Term.(const run $ runs_arg $ seconds_arg $ seed_arg)

(* --- abilene ------------------------------------------------------------------ *)

let abilene_cmd =
  let run seed fail_at restore_at =
    let r = Abilene.fig8_run ~seed ~fail_at ~restore_at () in
    Report.table ~title:"Figure 8: OSPF convergence seen by ping"
      ~header:[ ""; "value" ]
      ~rows:
        [
          [ "RTT before failure (ms)"; f r.Abilene.rtt_before ];
          [ "RTT on backup path (ms)"; f r.rtt_after ];
          [ "detection delay (s)"; f r.detect_delay ];
          [ "RTT after restore (ms)"; f r.restore_rtt ];
        ];
    Report.series ~title:"RTT vs time" ~x_label:"s" ~y_label:"ms"
      r.Abilene.rtt_series;
    let t = Abilene.fig9_run ~seed:(seed + 100) ~fail_at ~restore_at () in
    Report.table ~title:"Figure 9: TCP through the event" ~header:[ ""; "value" ]
      ~rows:
        [
          [ "total transferred (MB)"; f t.Abilene.total_mb ];
          [ "stall starts (s)"; f t.stall_start ];
          [ "transfer resumes (s)"; f t.stall_end ];
        ];
    Report.series ~title:"MB transferred vs time" ~x_label:"s" ~y_label:"MB"
      t.Abilene.cumulative
  in
  let fail_arg =
    Arg.(value & opt float 10.0 & info [ "fail-at" ] ~docv:"SEC"
           ~doc:"When to fail Denver-Kansas City (s).")
  in
  let restore_arg =
    Arg.(value & opt float 34.0 & info [ "restore-at" ] ~docv:"SEC"
           ~doc:"When to restore the link (s).")
  in
  let doc = "The §5.2 intra-domain routing experiment on the Abilene mirror." in
  Cmd.v (Cmd.info "abilene" ~doc)
    Term.(const run $ seed_arg $ fail_arg $ restore_arg)

(* --- topo ---------------------------------------------------------------------- *)

let topo_cmd =
  let run name configs =
    let g =
      match name with
      | "abilene" -> Abilene.topology ()
      | "deter" -> Vini_topo.Datasets.Deter.topology ()
      | "planetlab3" -> Vini_topo.Datasets.Planetlab3.topology ()
      | "nlr" -> Vini_topo.Datasets.Nlr.topology ()
      | other -> failwith ("unknown topology " ^ other)
    in
    Format.printf "%a@?" Vini_topo.Graph.pp g;
    if name = "abilene" then begin
      let primary, backup = Abilene.expected_paths () in
      Printf.printf "D.C.->Seattle primary : %s\n" (String.concat " > " primary);
      Printf.printf "D.C.->Seattle backup  : %s\n" (String.concat " > " backup)
    end;
    if configs then begin
      Printf.printf "\n--- generated XORP configuration (node 0) ---\n%s"
        (Vini_rcc.Rcc.xorp_config g 0);
      Printf.printf "\n--- generated Click configuration (node 0) ---\n%s"
        (Vini_rcc.Rcc.click_config g 0)
    end
  in
  let name_arg =
    Arg.(value & pos 0 string "abilene"
         & info [] ~docv:"NAME" ~doc:"abilene, nlr, deter, or planetlab3.")
  in
  let configs_arg =
    Arg.(value & flag & info [ "configs" ]
           ~doc:"Also print generated XORP/Click configurations.")
  in
  let doc = "Inspect a built-in topology (Figure 7 and friends)." in
  Cmd.v (Cmd.info "topo" ~doc) Term.(const run $ name_arg $ configs_arg)

(* --- mirror -------------------------------------------------------------------- *)

let mirror_cmd =
  let run file fail_spec seed =
    let text =
      match file with
      | None -> Vini_rcc.Rcc.abilene_text ()
      | Some path ->
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
    in
    let cfgs =
      match Vini_rcc.Config.parse_many text with
      | Ok cfgs -> cfgs
      | Error e -> failwith ("config parse error: " ^ e)
    in
    (match Vini_rcc.Rcc.audit cfgs with
    | [] -> Printf.printf "audit: clean (%d routers)\n" (List.length cfgs)
    | faults ->
        Printf.printf "audit found %d fault(s):\n" (List.length faults);
        List.iter (fun x -> Printf.printf "  - %s\n" x) faults;
        failwith "refusing to mirror a faulty configuration");
    let g =
      match Vini_rcc.Rcc.build_topology cfgs with
      | Ok g -> g
      | Error e -> failwith e
    in
    Format.printf "%a@?" Vini_topo.Graph.pp g;
    (* Run a convergence experiment: ping across the diameter while the
       requested link (default: the first) fails at t=10 and heals at t=34. *)
    let module Graph = Vini_topo.Graph in
    let module Engine = Vini_sim.Engine in
    let module Time = Vini_sim.Time in
    let a, b =
      match fail_spec with
      | Some s -> (
          match String.split_on_char ',' s with
          | [ x; y ] ->
              let id n =
                match Graph.id_of_name_opt g n with
                | Some i -> i
                | None ->
                    failwith
                      (Printf.sprintf "--fail: topology %S has no node %S"
                         (Graph.label g) n)
              in
              (id x, id y)
          | _ -> failwith "expected --fail NAME,NAME")
      | None ->
          let l = List.hd (Graph.links g) in
          (l.Graph.a, l.Graph.b)
    in
    let engine = Engine.create ~seed () in
    let vini = Vini_core.Vini.create ~engine ~graph:g () in
    let spec =
      Vini_core.Experiment.make ~name:"mirror"
        ~slice:(Vini_phys.Slice.pl_vini "mirror") ~vtopo:g
        ~events:
          [
            Vini_core.Experiment.at 50.0 (Vini_core.Experiment.Fail_vlink (a, b));
            Vini_core.Experiment.at 74.0
              (Vini_core.Experiment.Restore_vlink (a, b));
          ]
        ()
    in
    let inst = Vini_core.Vini.deploy vini spec in
    Vini_core.Vini.start inst;
    Engine.run ~until:(Time.sec 40) engine;
    let iias = Vini_core.Vini.iias inst in
    (* Ping across the graph's diameter. *)
    let src = 0 and dst = Graph.node_count g - 1 in
    let ping =
      Vini_measure.Ping.start
        ~stack:(Vini_overlay.Iias.tap (Vini_overlay.Iias.vnode iias src))
        ~dst:(Vini_overlay.Iias.tap_addr (Vini_overlay.Iias.vnode iias dst))
        ~count:200
        ~mode:(Vini_measure.Ping.Interval (Time.ms 500))
        ()
    in
    Engine.run ~until:(Time.sec 145) engine;
    Printf.printf "\nfailing %s--%s at t=10s, restoring at t=34s\n"
      (Graph.name g a) (Graph.name g b);
    Report.series
      ~title:
        (Printf.sprintf "ping %s -> %s RTT during the event" (Graph.name g src)
           (Graph.name g dst))
      ~x_label:"s" ~y_label:"ms"
      (List.map
         (fun (t, r) -> (t -. 40.0, r))
         (Vini_measure.Ping.series ping))
  in
  let file_arg =
    Arg.(value & opt (some file) None
         & info [ "configs" ] ~docv:"FILE"
             ~doc:"Router configuration file (default: embedded Abilene).")
  in
  let fail_arg =
    Arg.(value & opt (some string) None
         & info [ "fail" ] ~docv:"A,B"
             ~doc:"Link to fail, by router names (default: first link).")
  in
  let doc =
    "Mirror router configurations into a virtual network and run a \
     convergence experiment (the §6.2 pipeline)."
  in
  Cmd.v (Cmd.info "mirror" ~doc) Term.(const run $ file_arg $ fail_arg $ seed_arg)

(* --- ablate ---------------------------------------------------------------------- *)

let ablate_cmd =
  let run seconds =
    Report.table ~title:"Ablation A: PL-VINI scheduler knobs, decomposed"
      ~header:[ "slice treatment"; "TCP Mb/s"; "ping avg ms"; "ping mdev ms" ]
      ~rows:
        (List.map
           (fun (r : Ablation.knob_result) ->
             [ r.Ablation.label; f r.mbps; f r.ping_avg_ms; f r.ping_mdev_ms ])
           (Ablation.scheduler_knobs ~duration_s:seconds ()));
    Report.table ~title:"Ablation B: loss vs Click socket buffer (35 Mb/s CBR)"
      ~header:[ "rcvbuf KB"; "loss %" ]
      ~rows:
        (List.map
           (fun (kb, loss) -> [ string_of_int kb; f loss ])
           (Ablation.buffer_sweep ~duration_s:seconds ()));
    Report.table ~title:"Isolation study (§3.4): measuring vs noisy neighbour"
      ~header:[ "isolation"; "TCP Mb/s"; "ping avg ms"; "ping mdev ms" ]
      ~rows:
        (List.map
           (fun (r : Ablation.knob_result) ->
             [ r.Ablation.label; f r.mbps; f r.ping_avg_ms; f r.ping_mdev_ms ])
           (Ablation.isolation_matrix ()));
    Report.table ~title:"Ablation C: detection delay vs OSPF timers"
      ~header:[ "hello s"; "dead s"; "detection s" ]
      ~rows:
        (List.map
           (fun (h, d, det) -> [ string_of_int h; string_of_int d; f det ])
           (Ablation.timer_sweep ()))
  in
  let doc = "Ablation studies of the design choices (scheduler knobs, socket \
             buffers, OSPF timers)." in
  Cmd.v (Cmd.info "ablate" ~doc) Term.(const run $ seconds_arg)

(* --- run ----------------------------------------------------------------------- *)

let run_cmd =
  let run spec_file phys_name watch seed duration trace metrics_out report_out
      spans_out timeline_out timeline_interval embed_out scenario_out domains =
    let module Engine = Vini_sim.Engine in
    let module Time = Vini_sim.Time in
    let module Graph = Vini_topo.Graph in
    let text =
      match spec_file with
      | None -> Vini_core.Spec_lang.example
      | Some path ->
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
    in
    let parsed =
      match Vini_core.Spec_lang.parse text with
      | Ok p -> p
      | Error e -> failwith ("spec error: " ^ e)
    in
    (* A [topology ...] line in the spec wins over [--phys]: the declared
       substrate is resolved here and used for both the underlay and the
       elaboration, so embed targets resolve against the same graph. *)
    let phys, phys_name =
      match Vini_core.Spec_lang.substrate_graph parsed with
      | Ok (Some g) -> (g, Graph.label g)
      | Ok None -> (physical_topology ~seed phys_name, phys_name)
      | Error e -> failwith ("spec error: " ^ e)
    in
    let spec =
      match Vini_core.Spec_lang.to_spec parsed ~phys with
      | Ok s -> s
      | Error e -> failwith ("spec error: " ^ e)
    in
    Printf.printf "experiment %S: %d virtual nodes on substrate %S\n"
      spec.Vini_core.Experiment.exp_name
      (Graph.node_count spec.Vini_core.Experiment.vtopo)
      phys_name;
    (match spec.Vini_core.Experiment.scenario with
    | Some sc ->
        Printf.printf
          "scenario: %d simulated users, %s fidelity (tick %.0f ms)\n"
          sc.Vini_core.Experiment.workload.Vini_scenario.Workload.users
          (Vini_scenario.Fluid.fidelity_to_string
             sc.Vini_core.Experiment.fidelity)
          (Time.to_ms_f sc.Vini_core.Experiment.tick)
    | None -> ());
    (* CLI --domains overrides the spec's [domains] verb; either one (even
       a value of 1) selects the sharded engine so determinism is checked
       sharded-vs-sharded.  No flag and no verb = classic engine. *)
    let domains =
      match domains with
      | Some d when d < 1 -> failwith "--domains must be at least 1"
      | Some _ as d -> d
      | None ->
          let sd = spec.Vini_core.Experiment.domains in
          if sd > 1 then Some sd else None
    in
    let shards = Option.map (fun _ -> Engine.default_logical_shards) domains in
    let engine = Engine.create ~seed ?shards () in
    Option.iter
      (fun d ->
        Printf.printf "domains %d (%d logical shards, lookahead-windowed)\n" d
          (Engine.shards engine))
      domains;
    (* The span gate needs a sink enabling the span category *and* an
       installed recorder; [--spans-out] supplies both, folding the span
       category into [--trace]'s set (or a minimal sink) as needed. *)
    let trace =
      match (trace, spans_out) with
      | Some cats, Some _ when not (List.mem Vini_sim.Trace.Category.Span cats)
        ->
          Some (Vini_sim.Trace.Category.Span :: cats)
      | None, Some _ -> Some [ Vini_sim.Trace.Category.Span ]
      | t, _ -> t
    in
    let tracer =
      Option.map
        (fun categories ->
          let t = Vini_sim.Trace.create ~categories () in
          Vini_sim.Trace.install t;
          t)
        trace
    in
    let recorder =
      Option.map
        (fun _ ->
          let r = Vini_sim.Span.create () in
          Vini_sim.Span.install r;
          r)
        spans_out
    in
    let monitor =
      Option.map
        (fun _ ->
          Engine.set_profiling engine true;
          let m = Vini_measure.Monitor.create ~engine () in
          Vini_measure.Monitor.watch_engine m engine;
          m)
        metrics_out
    in
    let vini = Vini_core.Vini.create ~engine ~graph:phys () in
    let inst = Vini_core.Vini.deploy vini spec in
    (* Converge before the measurement clock starts. *)
    Vini_core.Vini.start inst;
    let iias = Vini_core.Vini.iias inst in
    (* [--timeline-out] installs the runtime profiler (one load + test on
       every instrumented hot path; never perturbs the schedule) and a
       sim-clock sampler over the engine, the profiler and the overlay. *)
    let profile =
      Option.map
        (fun _ ->
          let p = Vini_sim.Profile.create () in
          Vini_sim.Profile.install p;
          p)
        timeline_out
    in
    let timeline =
      Option.map
        (fun _ ->
          if timeline_interval < 1 then
            failwith "--timeline-interval must be at least 1 ms";
          let tl =
            Vini_measure.Timeline.create ~engine
              ~interval:(Time.ms timeline_interval) ()
          in
          Vini_measure.Timeline.watch_engine tl engine;
          Option.iter
            (fun p -> Vini_measure.Timeline.watch_profile tl p)
            profile;
          Vini_measure.Timeline.watch_overlay tl iias;
          tl)
        timeline_out
    in
    let watchdog =
      Option.map
        (fun _ ->
          let wd =
            Vini_measure.Watchdog.create ~engine ~overlay:iias
              ~vtopo:spec.Vini_core.Experiment.vtopo ()
          in
          Vini_measure.Watchdog.start wd;
          wd)
        report_out
    in
    let run_domains = Option.value domains ~default:1 in
    Vini_core.Vini.run ~until:(Time.sec 0) ~domains:run_domains vini;
    let src, dst =
      match watch with
      | Some s -> (
          match String.split_on_char ',' s with
          | [ a; b ] ->
              let vtopo = spec.Vini_core.Experiment.vtopo in
              let id n =
                match Graph.id_of_name_opt vtopo n with
                | Some i -> i
                | None ->
                    failwith
                      (Printf.sprintf "--watch: topology %S has no node %S"
                         (Graph.label vtopo) n)
              in
              (id a, id b)
          | _ -> failwith "--watch expects NAME,NAME")
      | None -> (0, Graph.node_count spec.Vini_core.Experiment.vtopo - 1)
    in
    let ping =
      Vini_measure.Ping.start
        ~stack:(Vini_overlay.Iias.tap (Vini_overlay.Iias.vnode iias src))
        ~dst:(Vini_overlay.Iias.tap_addr (Vini_overlay.Iias.vnode iias dst))
        ~count:(duration * 4)
        ~mode:(Vini_measure.Ping.Interval (Time.ms 250))
        ()
    in
    Option.iter
      (fun m ->
        Vini_measure.Monitor.counter m ~name:"ping.sent" (fun () ->
            float_of_int (Vini_measure.Ping.sent ping));
        Vini_measure.Monitor.counter m ~name:"ping.received" (fun () ->
            float_of_int (Vini_measure.Ping.received ping)))
      monitor;
    Vini_core.Vini.run ~until:(Time.sec (duration + 10)) ~domains:run_domains
      vini;
    Report.series
      ~title:
        (Printf.sprintf "ping %s -> %s during the experiment"
           (Graph.name spec.Vini_core.Experiment.vtopo src)
           (Graph.name spec.Vini_core.Experiment.vtopo dst))
      ~x_label:"s" ~y_label:"ms"
      (Vini_measure.Ping.series ping);
    Printf.printf "replies %d/%d (%.1f%% lost)\n"
      (Vini_measure.Ping.received ping)
      (Vini_measure.Ping.sent ping)
      (Vini_measure.Ping.loss_pct ping);
    Option.iter
      (fun path ->
        let r = Option.get recorder in
        Vini_sim.Span.uninstall ();
        (* With [--timeline-out] alongside, the spans document also
           carries the profiler's element attribution and one Perfetto
           counter track per timeline series. *)
        let counters =
          match timeline with
          | Some tl -> Vini_measure.Timeline.counter_series tl
          | None -> []
        in
        Vini_measure.Export.write ~path
          (Vini_measure.Export.spans_document ?profile ~counters r);
        Printf.printf "spans written to %s (%d records, %d overwritten)\n"
          path (Vini_sim.Span.length r) (Vini_sim.Span.overwritten r))
      spans_out;
    Option.iter
      (fun t ->
        Vini_sim.Trace.uninstall ();
        Printf.printf "trace: %d events recorded, %d overwritten\n"
          (Vini_sim.Trace.length t) (Vini_sim.Trace.overwritten t))
      tracer;
    Option.iter
      (fun path ->
        let m = Option.get monitor in
        Vini_measure.Monitor.stop m;
        Vini_measure.Export.write ~path
          (Vini_measure.Export.document ?trace:tracer [ m ]);
        Printf.printf "metrics written to %s\n" path)
      metrics_out;
    Option.iter
      (fun path ->
        let tl = Option.get timeline in
        Vini_measure.Timeline.stop tl;
        Vini_sim.Profile.uninstall ();
        let module E = Vini_measure.Export in
        E.write ~path
          (Vini_measure.Timeline.document
             ~extra:
               [
                 ("experiment", E.Str spec.Vini_core.Experiment.exp_name);
                 ("substrate", E.Str phys_name);
                 ("seed", E.Num (float_of_int seed));
               ]
             tl);
        Printf.printf "timeline written to %s (%d snapshots)\n" path
          (Vini_measure.Timeline.nsamples tl))
      timeline_out;
    Option.iter
      (fun path ->
        let module E = Vini_measure.Export in
        let wd = Option.get watchdog in
        Vini_measure.Watchdog.stop wd;
        let stats =
          List.init
            (Vini_overlay.Iias.vnode_count iias)
            (fun v ->
              let vn = Vini_overlay.Iias.vnode iias v in
              let s = Vini_overlay.Iias.stats vn in
              E.Obj
                [
                  ("name", E.Str (Vini_overlay.Iias.vname vn));
                  ( "alive",
                    E.Bool (Vini_overlay.Iias.vnode_alive vn) );
                  ("forwarded", E.Num (float_of_int s.Vini_overlay.Iias.forwarded));
                  ("delivered", E.Num (float_of_int s.Vini_overlay.Iias.delivered));
                  ("no_route", E.Num (float_of_int s.Vini_overlay.Iias.no_route));
                  ( "tunnel_drops",
                    E.Num (float_of_int s.Vini_overlay.Iias.tunnel_drops) );
                  ( "corrupt_drops",
                    E.Num (float_of_int s.Vini_overlay.Iias.corrupt_drops) );
                ])
        in
        let restarts =
          match Vini_overlay.Iias.supervisor iias with
          | None -> []
          | Some sup ->
              [
                ( "restarts",
                  E.Obj
                    (List.map
                       (fun name ->
                         ( name,
                           E.Num
                             (float_of_int
                                (Vini_phys.Supervisor.restarts sup ~name)) ))
                       (Vini_phys.Supervisor.children sup)) );
                ( "given_up",
                  E.Arr
                    (List.map
                       (fun n -> E.Str n)
                       (Vini_phys.Supervisor.given_up sup)) );
              ]
        in
        let doc =
          E.Obj
            ([
               ("format", E.Str "vini.report/1");
               ("experiment", E.Str spec.Vini_core.Experiment.exp_name);
               ("substrate", E.Str phys_name);
               ("seed", E.Num (float_of_int seed));
               ("duration_s", E.Num (float_of_int duration));
               ( "ping",
                 E.Obj
                   [
                     ("sent", E.Num (float_of_int (Vini_measure.Ping.sent ping)));
                     ( "received",
                       E.Num (float_of_int (Vini_measure.Ping.received ping)) );
                     ("loss_pct", E.Num (Vini_measure.Ping.loss_pct ping));
                   ] );
               ("watchdog", Vini_measure.Watchdog.json wd);
               ("vnodes", E.Arr stats);
             ]
            @ restarts)
        in
        E.write ~path doc;
        Printf.printf "report written to %s\n" path)
      report_out;
    Option.iter
      (fun path ->
        let module E = Vini_measure.Export in
        let module V = Vini_core.Vini in
        match (V.mapping inst, V.placement_request inst) with
        | Some m, Some req ->
            let slices =
              [
                {
                  E.es_name = spec.Vini_core.Experiment.exp_name;
                  es_vtopo = spec.Vini_core.Experiment.vtopo;
                  es_request = req;
                  es_result = Ok m;
                };
              ]
            in
            let migrations =
              List.map Vini_repro.Migration.export_of_migration
                (V.migrations inst)
            in
            E.write ~path
              (E.embed_document ~migrations ~substrate:(V.substrate vini)
                 ~slices ());
            Printf.printf "embedding written to %s (%d migration(s))\n" path
              (List.length migrations)
        | _ ->
            Printf.printf
              "embed-out: pinned placement, no embedding document\n")
      embed_out;
    Option.iter
      (fun path ->
        let module E = Vini_measure.Export in
        match Vini_core.Spec_lang.workload parsed with
        | Some workload ->
            E.write ~path
              (E.scenario_document ~name:spec.Vini_core.Experiment.exp_name
                 ?fluid:(Vini_core.Vini.fluid inst)
                 ~under:(Vini_core.Vini.underlay vini) ~substrate:phys
                 ~workload ());
            Printf.printf "scenario written to %s\n" path
        | None ->
            Printf.printf
              "scenario-out: spec declares no workload, nothing to write\n")
      scenario_out
  in
  let spec_arg =
    Arg.(value & opt (some file) None
         & info [ "spec" ] ~docv:"FILE"
             ~doc:"Experiment specification (default: a built-in example).")
  in
  let phys_arg =
    Arg.(value & opt string "mesh"
         & info [ "phys" ] ~docv:"NAME"
             ~doc:"Physical substrate: mesh, abilene, nlr, deter, planetlab3, \
                   or a vini.topo/1 $(b,.json) file from $(b,vini gen).  A \
                   $(b,topology) line in the spec overrides this flag.")
  in
  let watch_arg =
    Arg.(value & opt (some string) None
         & info [ "watch" ] ~docv:"A,B"
             ~doc:"Virtual node pair to ping during the run (default: first \
                   and last).")
  in
  let duration_arg =
    Arg.(value & opt int 60 & info [ "duration" ] ~docv:"SEC"
           ~doc:"Observation window after convergence.")
  in
  let report_out_arg =
    Arg.(value & opt (some string) None
         & info [ "report-out" ] ~docv:"FILE"
             ~doc:"Run an invariant watchdog during the experiment and write \
                   a vini.report/1 JSON document (ping stats, watchdog \
                   violations, per-vnode counters, supervised restarts) to \
                   $(docv).")
  in
  let embed_out_arg =
    Arg.(value & opt (some string) None
         & info [ "embed-out" ] ~docv:"FILE"
             ~doc:"Write the run's vini.embed/1 embedding document (solved \
                   mapping, substrate stress, acceptance counters, and any \
                   crash-driven migrations with their downtime) to $(docv).  \
                   Inspect or produce standalone documents with $(b,vini \
                   embed).")
  in
  let scenario_out_arg =
    Arg.(value & opt (some string) None
         & info [ "scenario-out" ] ~docv:"FILE"
             ~doc:"Write the run's vini.scenario/1 document (substrate \
                   summary, workload parameters, fluid-model conservation \
                   totals and per-link load, packet-side counters) to \
                   $(docv).  Requires a $(b,workload) line in the spec.")
  in
  let doc =
    "Deploy a textual experiment specification (§6.2) and watch it run."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ spec_arg $ phys_arg $ watch_arg $ seed_arg $ duration_arg
          $ trace_arg $ metrics_out_arg $ report_out_arg $ spans_out_arg
          $ timeline_out_arg $ timeline_interval_arg $ embed_out_arg
          $ scenario_out_arg $ domains_arg)

(* --- spans ----------------------------------------------------------------------- *)

let spans_cmd =
  let module E = Vini_measure.Export in
  let str k j = Option.bind (E.member k j) E.to_str in
  let num k j = Option.bind (E.member k j) E.to_float in
  let arr k j = Option.value ~default:[] (Option.bind (E.member k j) E.to_list) in
  let s_of k j = Option.value ~default:"?" (str k j) in
  let n_of k j = Option.value ~default:0.0 (num k j) in
  let run file check =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let doc =
      match E.of_string text with
      | Ok doc -> doc
      | Error e ->
          Printf.eprintf "%s: JSON parse error: %s\n" file e;
          exit 1
    in
    Report.table
      ~title:"Latency attribution (all flows)"
      ~header:[ "category"; "hops"; "total s"; "mean s"; "p95 s" ]
      ~rows:
        (List.map
           (fun row ->
             [
               s_of "attribution" row;
               Printf.sprintf "%.0f" (n_of "hops" row);
               Printf.sprintf "%.6f" (n_of "total_s" row);
               Printf.sprintf "%.6f" (n_of "mean_s" row);
               Printf.sprintf "%.6f" (n_of "p95_s" row);
             ])
           (arr "breakdown" doc));
    let drops = arr "drops" doc in
    if drops <> [] then begin
      (* Drop forensics, grouped by site and reason. *)
      let groups = Hashtbl.create 8 in
      List.iter
        (fun d ->
          let k = (s_of "site" d, s_of "reason" d) in
          Hashtbl.replace groups k
            (1 + Option.value ~default:0 (Hashtbl.find_opt groups k)))
        drops;
      Report.table ~title:"Drop forensics"
        ~header:[ "site"; "reason"; "count" ]
        ~rows:
          (Hashtbl.fold
             (fun (site, reason) c acc ->
               [ site; reason; string_of_int c ] :: acc)
             groups []
          |> List.sort compare);
      match drops with
      | d :: _ ->
          Printf.printf "\nexemplar drop: pkt %.0f died at %s (%s); path:\n"
            (n_of "pkt" d) (s_of "site" d) (s_of "reason" d);
          List.iter
            (fun step ->
              match s_of "kind" step with
              | "origin" ->
                  Printf.printf "  %12.6f  origin  %s\n" (n_of "t_s" step)
                    (s_of "component" step)
              | _ ->
                  Printf.printf "  %12.6f  %-18s %s\n" (n_of "t0_s" step)
                    (s_of "attribution" step) (s_of "component" step))
            (arr "path" d)
      | [] -> ()
    end;
    Printf.printf "\nworst paths by attributed latency:\n";
    List.iter
      (fun tr ->
        Printf.printf "  tree %.0f from %s: %.6f s%s\n" (n_of "orig" tr)
          (s_of "origin" tr) (n_of "total_s" tr)
          (match E.member "dropped" tr with
          | Some (E.Bool true) -> "  [dropped]"
          | _ -> "");
        List.iter
          (fun h ->
            Printf.printf "    %12.6f  %-18s %-30s %.6f s\n" (n_of "t0_s" h)
              (s_of "attribution" h) (s_of "component" h)
              (n_of "duration_s" h))
          (arr "hops" tr))
      (arr "worst_paths" doc);
    if check then begin
      let failures = ref [] in
      let fail fmt =
        Printf.ksprintf (fun s -> failures := s :: !failures) fmt
      in
      (match str "schema" doc with
      | Some s when s = E.spans_schema_version -> ()
      | Some s -> fail "schema: expected %s, got %s" E.spans_schema_version s
      | None -> fail "schema: missing");
      let events = arr "traceEvents" doc in
      if events = [] then fail "traceEvents: empty";
      List.iteri
        (fun i ev ->
          if str "name" ev = None || str "ph" ev = None || num "ts" ev = None
          then fail "traceEvents[%d]: missing name/ph/ts" i)
        events;
      if arr "breakdown" doc = [] then fail "breakdown: empty";
      List.iteri
        (fun i d ->
          if arr "path" d = [] then
            fail "drops[%d]: empty path (reason %s at %s)" i (s_of "reason" d)
              (s_of "site" d))
        drops;
      match List.rev !failures with
      | [] ->
          Printf.printf
            "\ncheck: OK (%d trace events, %d drops, all with paths)\n"
            (List.length events) (List.length drops)
      | fs ->
          List.iter (fun s -> Printf.eprintf "check: FAIL: %s\n" s) fs;
          exit 1
    end
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"A vini.spans/1 document.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate the document: schema tag, well-formed \
                   traceEvents, and a non-empty path on every drop.  \
                   Non-zero exit on failure.")
  in
  let doc =
    "Inspect a vini.spans/1 flight-recorder export: latency-attribution \
     breakdown, drop forensics, worst-path exemplars."
  in
  Cmd.v (Cmd.info "spans" ~doc) Term.(const run $ file_arg $ check_arg)

(* --- top ------------------------------------------------------------------------- *)

let top_cmd =
  let module E = Vini_measure.Export in
  let run file check =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let doc =
      match E.of_string text with
      | Ok doc -> doc
      | Error e ->
          Printf.eprintf "%s: JSON parse error: %s\n" file e;
          exit 1
    in
    let str k = Option.bind (E.member k doc) E.to_str in
    let num k = Option.bind (E.member k doc) E.to_float in
    let arr k =
      Option.value ~default:[] (Option.bind (E.member k doc) E.to_list)
    in
    let series =
      List.filter_map E.to_str (arr "series")
    in
    let samples = arr "samples" in
    let row j =
      match Option.map (List.filter_map E.to_float) (E.to_list j) with
      | Some (t :: vs) -> Some (t, vs)
      | _ -> None
    in
    let interval_s = Option.value ~default:0.0 (num "interval_s") in
    (match List.rev (List.filter_map row samples) with
    | [] -> Printf.printf "%s: empty timeline (no snapshots)\n" file
    | (t_last, vs_last) :: rest ->
        let prev = match rest with p :: _ -> Some p | [] -> None in
        let title =
          Printf.sprintf "timeline @ %.3f s (%d snapshots, interval %g s)"
            t_last (List.length samples) interval_s
        in
        (* Last snapshot per series, plus the per-second rate over the
           final interval — what a live `top` would show. *)
        let rows =
          List.mapi
            (fun i name ->
              let v = List.nth_opt vs_last i in
              let rate =
                match (v, prev) with
                | Some v, Some (t_prev, vs_prev) when t_last > t_prev -> (
                    match List.nth_opt vs_prev i with
                    | Some p -> Some ((v -. p) /. (t_last -. t_prev))
                    | None -> None)
                | _ -> None
              in
              [
                name;
                (match v with Some v -> Printf.sprintf "%g" v | None -> "?");
                (match rate with
                | Some r -> Printf.sprintf "%g" r
                | None -> "-");
              ])
            series
        in
        Report.table ~title ~header:[ "series"; "value"; "rate/s" ] ~rows);
    if check then begin
      let failures = ref [] in
      let fail fmt =
        Printf.ksprintf (fun s -> failures := s :: !failures) fmt
      in
      (match str "schema" with
      | Some s when s = Vini_measure.Timeline.schema_version -> ()
      | Some s ->
          fail "schema: expected %s, got %s"
            Vini_measure.Timeline.schema_version s
      | None -> fail "schema: missing");
      (match num "interval_s" with
      | Some s when s > 0.0 -> ()
      | Some s -> fail "interval_s: not positive (%g)" s
      | None -> fail "interval_s: missing");
      let width = List.length series in
      if List.length (arr "series") <> width then
        fail "series: non-string entries";
      let last_t = ref neg_infinity in
      List.iteri
        (fun i s ->
          match row s with
          | None -> fail "samples[%d]: not an array of numbers" i
          | Some (t, vs) ->
              if List.length vs <> width then
                fail "samples[%d]: %d values for %d series" i
                  (List.length vs) width;
              if t <= !last_t then
                fail "samples[%d]: time %g not increasing" i t;
              last_t := t)
        samples;
      match List.rev !failures with
      | [] ->
          Printf.printf "\ncheck: OK (%d series, %d snapshots)\n" width
            (List.length samples)
      | fs ->
          List.iter (fun s -> Printf.eprintf "check: FAIL: %s\n" s) fs;
          exit 1
    end
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"A vini.timeline/1 document.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate the document: schema tag, positive interval, \
                   rectangular samples, strictly increasing snapshot \
                   times.  Non-zero exit on failure.")
  in
  let doc =
    "Inspect a vini.timeline/1 self-observability export: the last \
     snapshot of every series with its per-second rate over the final \
     interval."
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ file_arg $ check_arg)

(* --- embed ----------------------------------------------------------------------- *)

let embed_cmd =
  let module Embed = Vini_embed.Embed in
  let module Request = Vini_embed.Request in
  let module Substrate = Vini_embed.Substrate in
  let module E = Vini_measure.Export in
  let module Graph = Vini_topo.Graph in
  let run phys_name vnodes cpu bw_mbps solver seed slices check out =
    let phys = physical_topology ~seed phys_name in
    let algo =
      match Request.algo_of_string solver with
      | Some a -> a
      | None -> failwith ("unknown solver " ^ solver ^ " (greedy or online)")
    in
    let vtopo = Migration.virtual_ring vnodes in
    let sub = Substrate.of_graph phys in
    let bw = bw_mbps *. 1e6 in
    Printf.printf
      "embedding %d slice(s) of a %d-node virtual ring (cpu %.2f cores/vnode, \
       bw %.1f Mb/s/vlink, %s solver) on %s (%d nodes)\n\n"
      slices vnodes cpu bw_mbps solver phys_name (Graph.node_count phys);
    let checked = ref 0 in
    let results =
      List.init slices (fun i ->
          let name =
            if slices = 1 then "slice" else Printf.sprintf "slice%d" i
          in
          let req =
            Request.make ~name ~cpu:(fun _ -> cpu) ~bw:(fun _ -> bw) ~algo
              ~seed:(seed + i) ()
          in
          let res =
            match Embed.solve sub ~vtopo req with
            | Ok m ->
                if check then begin
                  (match Embed.check sub ~vtopo req m with
                  | Ok () -> incr checked
                  | Error e ->
                      Printf.eprintf "check: FAIL (%s): %s\n" name e;
                      exit 1);
                end;
                Embed.commit sub ~vtopo req m;
                Substrate.note_admitted sub;
                Ok m
            | Error r ->
                Substrate.note_rejected sub;
                Error r
          in
          { E.es_name = name; es_vtopo = vtopo; es_request = req;
            es_result = res })
    in
    List.iter
      (fun s ->
        match s.E.es_result with
        | Ok m ->
            Report.table
              ~title:
                (Printf.sprintf "%s: mapped (stretch %.3f)" s.E.es_name
                   (Embed.stretch sub m))
              ~header:[ "vnode"; "pnode"; "cpu" ]
              ~rows:
                (Array.to_list
                   (Array.mapi
                      (fun v p ->
                        [ Graph.name vtopo v; Graph.name phys p; f cpu ])
                      m.Embed.nodes));
            if slices = 1 then
              List.iter
                (fun ((va, vb), path) ->
                  Printf.printf "  %s-%s via %s\n" (Graph.name vtopo va)
                    (Graph.name vtopo vb)
                    (String.concat " > " (List.map (Graph.name phys) path)))
                m.Embed.vpaths
        | Error r ->
            Printf.printf "%s: REJECTED [%s] %s\n" s.E.es_name
              (Embed.rejection_kind r)
              (Embed.rejection_to_string r))
      results;
    print_newline ();
    Report.table ~title:"per-pnode stress (reference cores)"
      ~header:[ "pnode"; "capacity"; "used"; "residual" ]
      ~rows:
        (List.init (Graph.node_count phys) (fun p ->
             [
               Graph.name phys p;
               f (Substrate.node_capacity sub p);
               f (Substrate.node_used sub p);
               f (Substrate.node_residual sub p);
             ]));
    Printf.printf "admitted %d, rejected %d (acceptance %.2f)\n"
      (Substrate.admitted sub) (Substrate.rejected sub)
      (Substrate.acceptance_rate sub);
    if check && !checked > 0 then
      Printf.printf "check: OK (%d mapping(s) validated)\n" !checked;
    Option.iter
      (fun path ->
        E.write ~path (E.embed_document ~substrate:sub ~slices:results ());
        Printf.printf "embedding written to %s\n" path)
      out;
    if Substrate.admitted sub = 0 && Substrate.rejected sub > 0 then exit 3
  in
  let phys_arg =
    Arg.(value & opt string "abilene"
         & info [ "phys" ] ~docv:"NAME"
             ~doc:"Physical substrate: abilene, mesh, nlr, deter, planetlab3.")
  in
  let nodes_arg =
    Arg.(value & opt int 6 & info [ "nodes" ] ~docv:"N"
           ~doc:"Virtual ring size (the slice topology to place).")
  in
  let cpu_arg =
    Arg.(value & opt float 0.25 & info [ "cpu" ] ~docv:"CORES"
           ~doc:"Per-virtual-node CPU demand, in reference cores.")
  in
  let bw_arg =
    Arg.(value & opt float 0.0 & info [ "bw" ] ~docv:"MBPS"
           ~doc:"Per-virtual-link bandwidth demand, in Mb/s.")
  in
  let solver_arg =
    Arg.(value & opt string "greedy"
         & info [ "solver" ] ~docv:"ALGO"
             ~doc:"Placement solver: greedy (capacity-aware best-fit) or \
                   online (deterministic congestion-priced).")
  in
  let slices_arg =
    Arg.(value & opt int 1 & info [ "slices" ] ~docv:"N"
           ~doc:"Admit an arrival sequence of N identical slices against the \
                 shared substrate and report the acceptance rate.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate every accepted mapping against the substrate \
                   (injectivity, liveness, path adjacency, residual fit) \
                   before committing it; non-zero exit on failure.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the vini.embed/1 JSON document (mappings or \
                   structured rejections, substrate stress, residual \
                   histogram, acceptance) to $(docv).")
  in
  let doc =
    "Place virtual topologies on a physical substrate with the \
     capacity-aware embedding engine: solved mappings, per-pnode stress, \
     structured rejection reasons.  Exits 3 when nothing could be admitted."
  in
  Cmd.v (Cmd.info "embed" ~doc)
    Term.(const run $ phys_arg $ nodes_arg $ cpu_arg $ bw_arg $ solver_arg
          $ seed_arg $ slices_arg $ check_arg $ out_arg)

(* --- migrate --------------------------------------------------------------------- *)

let migrate_cmd =
  let module V = Vini_core.Vini in
  let module E = Vini_measure.Export in
  let module Time = Vini_sim.Time in
  let run seed vnodes at duration domains target crash compare_ check out =
    let kind_str (m : V.migration) =
      match m.V.m_kind with V.Planned -> "planned" | V.Crash_driven -> "crash"
    in
    let print_result label (r : Migration.result) =
      Report.table
        ~title:(Printf.sprintf "%s: migration records" label)
        ~header:
          [ "vnode"; "from"; "to"; "kind"; "down_s"; "loss"; "stretch<";
            "stretch>"; "balance<"; "balance>" ]
        ~rows:
          (List.map
             (fun (m : V.migration) ->
               [
                 string_of_int m.V.m_vnode;
                 string_of_int m.m_from;
                 string_of_int m.m_to;
                 kind_str m;
                 f (Time.to_sec_f (Time.sub m.m_restored_at m.m_down_at));
                 (match m.m_cutover_loss with
                 | Some n -> string_of_int n
                 | None -> "-");
                 f m.m_stretch_before;
                 f m.m_stretch_after;
                 f m.m_balance_before;
                 f m.m_balance_after;
               ])
             r.Migration.migrations);
      Printf.printf "%s: pings %d sent, %d received (%d lost)\n" label
        r.Migration.pings_sent r.Migration.pings_received
        (r.Migration.pings_sent - r.Migration.pings_received);
      List.iter
        (fun (v, reason) ->
          Printf.printf "%s: migration of vnode %d failed: %s\n" label v
            reason)
        r.Migration.migration_failures
    in
    let write_export (r : Migration.result) =
      Option.iter
        (fun path ->
          E.write ~path r.Migration.export;
          Printf.printf "embedding written to %s\n" path)
        out
    in
    let total_loss (r : Migration.result) =
      List.fold_left
        (fun acc (m : V.migration) ->
          acc + Option.value ~default:0 m.V.m_cutover_loss)
        0 r.Migration.migrations
    in
    let total_down (r : Migration.result) =
      List.fold_left
        (fun acc (m : V.migration) ->
          acc +. Time.to_sec_f (Time.sub m.V.m_restored_at m.V.m_down_at))
        0.0 r.Migration.migrations
    in
    if compare_ then begin
      let c = Migration.compare_modes ~seed ~vnodes ~at ~duration ?domains () in
      print_result "planned" c.Migration.planned;
      print_newline ();
      print_result "crash" c.Migration.crash;
      print_newline ();
      Report.table ~title:"planned vs crash-driven"
        ~header:[ "mode"; "downtime_s"; "cutover_loss"; "ping_loss" ]
        ~rows:
          [
            [ "planned"; f c.Migration.planned_downtime_s;
              string_of_int c.Migration.planned_cutover_loss;
              string_of_int c.Migration.planned_ping_loss ];
            [ "crash"; f c.Migration.crash_downtime_s; "-";
              string_of_int c.Migration.crash_ping_loss ];
          ];
      write_export c.Migration.planned;
      if
        check
        && (c.Migration.planned_cutover_loss > 0
           || c.Migration.planned_downtime_s > 0.0
           || c.Migration.planned.Migration.migrations = [])
      then begin
        Printf.eprintf "check: FAIL (planned migration not lossless)\n";
        exit 3
      end
    end
    else if crash then begin
      let r = Migration.run ~seed ~vnodes ~crash_at:at ~duration ?domains () in
      print_result "crash" r;
      write_export r;
      if check && (r.Migration.migrations = [] || total_down r <= 0.0) then begin
        Printf.eprintf
          "check: FAIL (crash-driven migration recorded no downtime)\n";
        exit 3
      end
    end
    else begin
      let r =
        Migration.run_planned ~seed ~vnodes ~migrate_at:at ~duration ?domains
          ?target ()
      in
      print_result "planned" r;
      write_export r;
      if
        check
        && (r.Migration.migrations = []
           || r.Migration.migration_failures <> []
           || total_loss r > 0 || total_down r > 0.0)
      then begin
        Printf.eprintf
          "check: FAIL (planned migration lost packets or failed)\n";
        exit 3
      end
    end
  in
  let vnodes_arg =
    Arg.(value & opt int 6 & info [ "vnodes" ] ~docv:"N"
           ~doc:"Virtual ring size placed on Abilene.")
  in
  let at_arg =
    Arg.(value & opt float 10.0
         & info [ "at" ] ~docv:"SEC"
             ~doc:"Seconds into the measurement window at which the move \
                   (or crash) happens.")
  in
  let duration_arg =
    Arg.(value & opt float 40.0 & info [ "duration" ] ~docv:"SEC"
           ~doc:"Measurement window, in simulated seconds.")
  in
  let target_arg =
    Arg.(value & opt (some int) None
         & info [ "target" ] ~docv:"PNODE"
             ~doc:"Explicit physical target for the planned move (default: \
                   first spare machine).")
  in
  let crash_flag =
    Arg.(value & flag
         & info [ "crash" ]
             ~doc:"Run the crash-driven scenario instead of the planned \
                   one.")
  in
  let compare_flag =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"Run both scenarios on the same seed and print the \
                   planned-vs-crash quality summary.")
  in
  let check_flag =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit 3 unless the planned migration completed with zero \
                   downtime and zero cutover packet loss (and, with \
                   $(b,--crash), the crash-driven one recorded real \
                   downtime).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the run's vini.embed/1 JSON document (mapping, \
                   substrate stress, migration records with cutover loss \
                   and stretch/balance deltas) to $(docv).")
  in
  let doc =
    "Live-migrate a virtual node of a running slice, make-before-break: \
     pre-cloned process, double-provisioned resources, atomic barrier \
     flip, drain, retire.  Prints migration-quality records (downtime, \
     cutover loss, path-stretch and balance deltas); $(b,--compare) runs \
     the planned and crash-driven scenarios side by side."
  in
  Cmd.v (Cmd.info "migrate" ~doc)
    Term.(const run $ seed_arg $ vnodes_arg $ at_arg $ duration_arg
          $ domains_arg $ target_arg $ crash_flag $ compare_flag $ check_flag
          $ out_arg)

(* --- mttr ------------------------------------------------------------------------ *)

let mttr_cmd =
  let run seed backoffs =
    let rows = Mttr.sweep ~seed ~backoffs () in
    Printf.printf
      "MTTR on the Abilene mirror: crash the Denver machine at t=10s, \
       reboot at t=25s\n(control row: cut the Denver--Kansas-City virtual \
       link instead)\n\n";
    List.iter print_endline (Mttr.row_strings rows)
  in
  let backoffs_arg =
    Arg.(value & opt (list float) [ 0.5; 2.0; 8.0 ]
         & info [ "backoffs" ] ~docv:"S,S,..."
             ~doc:"Supervisor base-backoff values to sweep (seconds).")
  in
  let doc =
    "MTTR and packet loss during OSPF reconvergence under node vs link \
     failure, swept over supervisor backoff settings."
  in
  Cmd.v (Cmd.info "mttr" ~doc) Term.(const run $ seed_arg $ backoffs_arg)

(* --- upcalls --------------------------------------------------------------------- *)

let upcalls_cmd =
  let run seed =
    let u1, u2 = Abilene.upcall_demo ~seed () in
    Printf.printf
      "physical Denver-KC failed and restored; upcalls delivered: exp1=%d \
       exp2=%d (§6.1 exposure of underlying topology changes)\n"
      u1 u2
  in
  let doc = "Demonstrate physical-failure upcalls to concurrent experiments." in
  Cmd.v (Cmd.info "upcalls" ~doc) Term.(const run $ seed_arg)

(* --- gen ------------------------------------------------------------------------- *)

let gen_cmd =
  let module Graph = Vini_topo.Graph in
  let module Generate = Vini_scenario.Generate in
  let summarize g =
    let delays =
      List.map
        (fun l -> Vini_sim.Time.to_ms_f l.Graph.delay)
        (Graph.links g)
    in
    let mean = List.fold_left ( +. ) 0.0 delays in
    let n = float_of_int (max 1 (List.length delays)) in
    Printf.printf "%s: %d nodes, %d links, mean link delay %.2f ms\n"
      (Graph.label g) (Graph.node_count g) (Graph.link_count g) (mean /. n)
  in
  let run kind size seed alpha beta degree bw out check =
    match check with
    | Some path -> (
        match Generate.load_file path with
        | Ok g ->
            Printf.printf "%s: valid %s document; " path
              Generate.schema_version;
            summarize g
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 1)
    | None ->
        let kind =
          match kind with
          | Some k -> k
          | None ->
              failwith
                "KIND required (waxman | fat-tree | backbone), or --check FILE"
        in
        let size =
          match size with
          | Some n -> n
          | None -> failwith "SIZE required (node count / fat-tree arity)"
        in
        let gkind =
          match
            Generate.parse_kind kind ~n:size ?alpha ?beta ?degree
              ?bandwidth_bps:bw ()
          with
          | Ok k -> k
          | Error e -> failwith e
        in
        let spec = { Generate.kind = gkind; seed } in
        let text = Generate.document spec in
        (match out with
        | Some path ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc text);
            summarize (Generate.generate spec);
            Printf.printf "written to %s\n" path
        | None -> print_string text)
  in
  let kind_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"KIND"
             ~doc:"Generator family: waxman, fat-tree, or backbone.")
  in
  let size_arg =
    Arg.(value & pos 1 (some int) None
         & info [] ~docv:"SIZE"
             ~doc:"Node count (waxman, backbone) or arity (fat-tree).")
  in
  let alpha_arg =
    Arg.(value & opt (some float) None
         & info [ "alpha" ] ~docv:"A" ~doc:"Waxman edge-probability scale.")
  in
  let beta_arg =
    Arg.(value & opt (some float) None
         & info [ "beta" ] ~docv:"B" ~doc:"Waxman distance-decay parameter.")
  in
  let degree_arg =
    Arg.(value & opt (some int) None
         & info [ "degree" ] ~docv:"D"
             ~doc:"Backbone nearest-neighbour links per PoP.")
  in
  let bw_arg =
    Arg.(value & opt (some float) None
         & info [ "bw" ] ~docv:"BPS" ~doc:"Link bandwidth in bits per second.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the vini.topo/1 document to $(docv) instead of \
                   stdout.")
  in
  let check_arg =
    Arg.(value & opt (some file) None
         & info [ "check" ] ~docv:"FILE"
             ~doc:"Validate $(docv) as a vini.topo/1 document instead of \
                   generating (exit 1 on schema or structural errors).")
  in
  let doc =
    "Generate a seeded physical substrate (Waxman, fat-tree, or synthetic \
     backbone) as a vini.topo/1 JSON document.  Byte-identical per (kind, \
     parameters, seed); always connected.  Feed the file to $(b,vini run \
     --phys FILE.json) or a spec's $(b,topology load) line."
  in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ kind_arg $ size_arg $ seed_arg $ alpha_arg $ beta_arg
          $ degree_arg $ bw_arg $ out_arg $ check_arg)

let main =
  let doc = "VINI: a virtual network infrastructure (SIGCOMM 2006), reproduced" in
  Cmd.group
    (Cmd.info "vini" ~version:"1.0.0" ~doc)
    [ deter_cmd; planetlab_cmd; abilene_cmd; topo_cmd; mirror_cmd; run_cmd;
      gen_cmd; ablate_cmd; spans_cmd; top_cmd; embed_cmd; migrate_cmd;
      mttr_cmd; upcalls_cmd ]

let () = exit (Cmd.eval main)
