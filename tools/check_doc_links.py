#!/usr/bin/env python3
"""Lint intra-repo markdown links.

Walks the repo's top-level markdown files, collects every relative link
(`[text](FILE.md)` or `[text](FILE.md#anchor)`), and fails if the target
file does not exist or the anchor does not correspond to any heading in
it.  Anchors are slugified the way GitHub renders them: lowercase,
spaces to dashes, punctuation dropped.  External (scheme-qualified) and
in-page (`#...`) links to the same file are checked too; bare URLs and
code blocks are ignored.

Usage: python3 tools/check_doc_links.py [file.md ...]
With no arguments, checks the repo's cross-linked documentation set.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = [
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "PERFORMANCE.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
]

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for ASCII docs."""
    # Inline code and links render as their text before slugification.
    heading = re.sub(r"`([^`]*)`", r"\1", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def strip_code_blocks(text: str) -> str:
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def anchors_of(path: Path) -> set:
    seen, anchors = {}, set()
    for line in strip_code_blocks(path.read_text()).splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check(files):
    anchor_cache = {}
    errors = []
    for name in files:
        src = ROOT / name
        if not src.exists():
            errors.append(f"{name}: file listed for checking does not exist")
            continue
        text = strip_code_blocks(src.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                frag = None
                if "#" in target:
                    target, frag = target.split("#", 1)
                dest = src if target == "" else (src.parent / target)
                if not dest.exists():
                    errors.append(
                        f"{name}:{lineno}: dangling link -> {m.group(1)}"
                    )
                    continue
                if frag is not None and dest.suffix == ".md":
                    if dest not in anchor_cache:
                        anchor_cache[dest] = anchors_of(dest)
                    if frag.lower() not in anchor_cache[dest]:
                        errors.append(
                            f"{name}:{lineno}: dangling anchor -> "
                            f"{m.group(1)} (no heading '#{frag}' in "
                            f"{dest.name})"
                        )
    return errors


def main():
    files = sys.argv[1:] or DEFAULT_DOCS
    errors = check(files)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} broken doc link(s)", file=sys.stderr)
        return 1
    print(f"doc links ok across {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
